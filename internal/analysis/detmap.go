package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Detmap flags iteration over a map whose results feed ordered output. Go
// randomizes map iteration order on purpose, so any map range that writes
// bytes, appends to a slice, mutates state outside the loop, or picks a value
// to return produces run-to-run differences — the exact failure mode that
// breaks bit-identical sharded stats and byte-identical checkpoint images.
// The blessed pattern (collect the keys, sort them, then iterate the sorted
// slice — see stats.Distribution.saveState or Crossbar.CheckpointSave) is
// recognized: a loop whose only effect is appending to slices that are sorted
// before further use is not reported.
//
// Commutative writes stay legal: assigning through a map index, deleting from
// a map, and everything whose targets live inside the loop are
// order-insensitive and pass.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc:  "flag map iteration feeding ordered output unless keys are sorted first",
	Run:  runDetmap,
}

func runDetmap(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			d := &detmapFunc{pass: pass, localFuncs: map[types.Object]*ast.FuncLit{}}
			d.collectLocalFuncs(fd.Body)
			d.walkStmts(fd.Body.List)
		}
	}
}

// detmapFunc analyzes one function declaration.
type detmapFunc struct {
	pass *Pass
	// localFuncs maps variables bound to function literals in this function,
	// so a loop body calling a helper closure is judged by what the closure
	// does (e.g. closeBank mutating an accumulator it captured).
	localFuncs map[types.Object]*ast.FuncLit
}

func (d *detmapFunc) collectLocalFuncs(body *ast.BlockStmt) {
	info := d.pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok {
					continue
				}
				if id, ok := st.Lhs[i].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						d.localFuncs[obj] = lit
					} else if obj := info.Uses[id]; obj != nil {
						d.localFuncs[obj] = lit
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range st.Values {
				if lit, ok := v.(*ast.FuncLit); ok && i < len(st.Names) {
					if obj := info.Defs[st.Names[i]]; obj != nil {
						d.localFuncs[obj] = lit
					}
				}
			}
		}
		return true
	})
}

// walkStmts descends through statement lists so that when a map range is
// found, the statements following it in the same block are at hand (that is
// where the sort call of the collect-sort-iterate pattern lives).
func (d *detmapFunc) walkStmts(stmts []ast.Stmt) {
	for i, st := range stmts {
		if rs, ok := st.(*ast.RangeStmt); ok {
			if d.isMapRange(rs) {
				d.checkLoop(rs, stmts[i+1:])
			}
		}
		ast.Inspect(st, func(n ast.Node) bool {
			switch b := n.(type) {
			case *ast.BlockStmt:
				if n == st {
					return true
				}
				d.walkStmts(b.List)
				return false
			case *ast.CaseClause:
				d.walkStmts(b.Body)
				return false
			case *ast.CommClause:
				d.walkStmts(b.Body)
				return false
			case *ast.RangeStmt:
				if b != st {
					// Reached through a non-block parent (e.g. a labeled
					// statement); its body is handled via BlockStmt above.
					return true
				}
				d.walkStmts(b.Body.List)
				return false
			case *ast.FuncLit:
				d.walkStmts(b.Body.List)
				return false
			}
			return true
		})
	}
}

func (d *detmapFunc) isMapRange(rs *ast.RangeStmt) bool {
	t := d.pass.Pkg.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// appendTarget is one `v = append(v, ...)` accumulation found in a loop body,
// keyed by the printed lvalue so selector targets (st.Origin) match too.
type appendTarget struct {
	key string
	obj types.Object // non-nil for plain identifiers
	pos token.Pos
}

func (d *detmapFunc) checkLoop(rs *ast.RangeStmt, following []ast.Stmt) {
	var sink string
	var sinkPos token.Pos
	var appends []appendTarget
	visited := map[*ast.FuncLit]bool{}

	report := func(pos token.Pos, msg string) {
		if sink == "" {
			sink = msg
			sinkPos = pos
		}
	}

	// scan inspects body for order-sensitive effects; boundary is the node
	// within which declared objects count as local. allowReturn is true only
	// for the loop body proper: a return inside a function literal exits the
	// literal, not the enclosing function, so it picks nothing by map order.
	var scan func(body ast.Node, boundary ast.Node, allowReturn bool)

	info := d.pass.Pkg.Info
	isLocal := func(obj types.Object, boundary ast.Node) bool {
		return obj == nil || (obj.Pos() >= boundary.Pos() && obj.Pos() <= boundary.End())
	}
	rootIdent := func(e ast.Expr) *ast.Ident {
		for {
			switch v := e.(type) {
			case *ast.Ident:
				return v
			case *ast.SelectorExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.ParenExpr:
				e = v.X
			default:
				return nil
			}
		}
	}
	objOf := func(id *ast.Ident) types.Object {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	isMapIndex := func(e ast.Expr) bool {
		ix, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok {
			return false
		}
		t := info.TypeOf(ix.X)
		if t == nil {
			return false
		}
		_, isMap := t.Underlying().(*types.Map)
		return isMap
	}

	scan = func(body ast.Node, boundary ast.Node, allowReturn bool) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				if st != body {
					// Judge the literal's effects with its own locals scoped
					// out, and without treating its returns as the enclosing
					// function's.
					scan(st.Body, st, false)
					return false
				}
			case *ast.AssignStmt:
				if st.Tok == token.DEFINE {
					return true
				}
				for i, lhs := range st.Lhs {
					lhs = ast.Unparen(lhs)
					root := rootIdent(lhs)
					if root == nil {
						continue
					}
					obj := objOf(root)
					if isLocal(obj, boundary) {
						continue
					}
					if isMapIndex(lhs) {
						continue // m[k] = v is commutative over distinct keys
					}
					// v = append(v, ...) is the collect half of the blessed
					// pattern; defer judgment until we see whether it is
					// sorted afterwards.
					if st.Tok == token.ASSIGN && len(st.Lhs) == len(st.Rhs) {
						if call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
							appends = append(appends, appendTarget{key: types.ExprString(lhs), obj: obj, pos: st.Pos()})
							continue
						}
					}
					report(st.Pos(), fmt.Sprintf("writes %s", types.ExprString(lhs)))
				}
			case *ast.IncDecStmt:
				lhs := ast.Unparen(st.X)
				root := rootIdent(lhs)
				if root == nil || isLocal(objOf(root), boundary) || isMapIndex(lhs) {
					return true
				}
				report(st.Pos(), fmt.Sprintf("writes %s", types.ExprString(lhs)))
			case *ast.SendStmt:
				report(st.Pos(), "sends on a channel")
			case *ast.ReturnStmt:
				if allowReturn && len(st.Results) > 0 {
					report(st.Pos(), "returns a value chosen by iteration order")
				}
			case *ast.CallExpr:
				if f := funcFor(info, st); f != nil {
					if isWriterFunc(f) {
						report(st.Pos(), fmt.Sprintf("writes output via %s", f.Name()))
						return true
					}
				}
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
					if obj := objOf(id); obj != nil {
						if lit := d.localFuncs[obj]; lit != nil && !visited[lit] {
							visited[lit] = true
							scan(lit.Body, lit, false)
						}
					}
				}
			}
			return true
		})
	}
	scan(rs.Body, rs, true)

	what := types.ExprString(rs.X)
	if sink != "" {
		d.pass.Reportf(rs.For, "map iteration over %s is order-sensitive (%s at line %d); iterate over sorted keys",
			what, sink, d.pass.Fset.Position(sinkPos).Line)
		return
	}
	for _, at := range appends {
		if !sortedAfter(info, at, following) {
			d.pass.Reportf(rs.For, "map iteration over %s appends to %s, which is not sorted before use; sort it or iterate over sorted keys",
				what, at.key)
			return
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isWriterFunc reports whether f emits ordered output: the fmt print family,
// or a method whose name marks it as a writer/encoder.
func isWriterFunc(f *types.Func) bool {
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		switch f.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println", "Encode":
			return true
		}
		return false
	}
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		switch f.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	return false
}

// sortedAfter reports whether a sort call mentioning the append target
// appears in the statements after the loop (sort.Slice(keys, ...),
// sort.Strings(keys), slices.Sort(keys), keys.Sort(), ...).
func sortedAfter(info *types.Info, at appendTarget, following []ast.Stmt) bool {
	found := false
	for _, st := range following {
		if found {
			break
		}
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				arg = ast.Unparen(arg)
				if id, ok := arg.(*ast.Ident); ok && at.obj != nil && info.Uses[id] == at.obj {
					found = true
					return false
				}
				if types.ExprString(arg) == at.key {
					found = true
					return false
				}
			}
			// keys.Sort() style: the receiver is the target.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if types.ExprString(sel.X) == at.key {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

// isSortCall recognizes the sort/slices package functions and any method or
// function whose name contains "Sort".
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	f := funcFor(info, call)
	if f == nil {
		return false
	}
	if f.Pkg() != nil && (f.Pkg().Path() == "sort" || f.Pkg().Path() == "slices") {
		return true
	}
	return containsSort(f.Name())
}

func containsSort(name string) bool {
	for i := 0; i+4 <= len(name); i++ {
		if name[i:i+4] == "Sort" || name[i:i+4] == "sort" {
			return true
		}
	}
	return false
}
