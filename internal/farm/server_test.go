package farm

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// inprocExec runs the point in this process — the real simulation, no
// subprocess — so scheduler tests exercise real results without fork cost.
func inprocExec(a Attempt, onStart func(int), stop <-chan struct{}) (*PointResult, error) {
	onStart(0)
	return a.Point.Run(nil)
}

// fakeExec returns instantly-fabricated results, with fail deciding which
// attempts error. Cheap enough to drive many scheduling scenarios.
func fakeExec(fail func(a Attempt) error) Executor {
	return func(a Attempt, onStart func(int), stop <-chan struct{}) (*PointResult, error) {
		onStart(0)
		if fail != nil {
			if err := fail(a); err != nil {
				return nil, err
			}
		}
		res := &PointResult{Key: a.Point.Key()}
		if a.Point.Kind == "sweep" {
			res.Sweep = &experiments.SweepRow{StrideBursts: a.Point.Stride, Banks: a.Point.Banks}
		} else {
			res.Fig9 = &experiments.Fig9Row{Name: "fake", IPC: float64(a.Point.Config + 1)}
		}
		return res, nil
	}
}

func newTestServer(t *testing.T, dir string, workers int, retry RetryPolicy, exec Executor) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Addr:    "127.0.0.1:0",
		DataDir: dir,
		Workers: workers,
		Retry:   retry,
		Exec:    exec,
		Log:     io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown() }) //nolint:errcheck
	return srv
}

func submitJob(t *testing.T, base string, spec JobSpec) submitResponse {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	var sub submitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

func getJob(t *testing.T, base, id string) jobDetail {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jd jobDetail
	if err := json.NewDecoder(resp.Body).Decode(&jd); err != nil {
		t.Fatal(err)
	}
	return jd
}

func waitJob(t *testing.T, base, id string) jobDetail {
	t.Helper()
	for i := 0; i < 6000; i++ {
		jd := getJob(t, base, id)
		if jd.Status != "running" {
			return jd
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s still running after 60s", id)
	return jobDetail{}
}

func getResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, data)
	}
	return data
}

// TestEndToEndByteIdenticalAndCached is the acceptance criterion in
// miniature: a farm-merged explore job equals the single-process run of the
// same grid byte for byte, and a resubmission is served entirely from the
// fingerprint cache.
func TestEndToEndByteIdenticalAndCached(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), 2, RetryPolicy{MaxAttempts: 2}, inprocExec)
	base := "http://" + srv.Addr()
	spec := JobSpec{Type: "explore", MemOps: 60, Cores: 2}

	sub := submitJob(t, base, spec)
	if sub.Points != experiments.NumExplorePoints() || sub.Cached != 0 {
		t.Fatalf("submit = %+v, want %d points, 0 cached", sub, experiments.NumExplorePoints())
	}
	jd := waitJob(t, base, sub.ID)
	if jd.Status != "done" {
		t.Fatalf("job finished %q, want done (points: %+v)", jd.Status, jd.PointRuns)
	}
	got := getResult(t, base, sub.ID)

	res, err := experiments.RunFig9(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.EncodeResultJSON(experiments.NewFig9JSON(res, 60, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("farm-merged result differs from single-process run:\n--- farm\n%s\n--- single\n%s", got, want)
	}

	// Resubmit: every point must come straight from the cache.
	sub2 := submitJob(t, base, spec)
	if sub2.Cached != sub2.Points {
		t.Fatalf("resubmit cached %d/%d points, want all", sub2.Cached, sub2.Points)
	}
	jd2 := getJob(t, base, sub2.ID) // no waiting: fully-cached jobs finish at submit
	if jd2.Status != "done" {
		t.Fatalf("cached job status %q, want done immediately", jd2.Status)
	}
	if got2 := getResult(t, base, sub2.ID); !bytes.Equal(got2, want) {
		t.Fatal("cache-served result differs from the computed one")
	}
}

// TestRetryBudgetAndPartialResult drives one deterministically-failing point
// and one flaky point: the flaky one recovers within its budget, the
// deterministic one is reported failed (not retried forever) and the job
// completes partial.
func TestRetryBudgetAndPartialResult(t *testing.T) {
	exec := fakeExec(func(a Attempt) error {
		if a.Point.Config == 1 {
			return errors.New("deterministic fault")
		}
		if a.Point.Config == 2 && a.Attempt < 3 {
			return errors.New("flaky fault")
		}
		return nil
	})
	srv := newTestServer(t, t.TempDir(), 2, RetryPolicy{MaxAttempts: 3}, exec)
	base := "http://" + srv.Addr()

	sub := submitJob(t, base, JobSpec{Type: "explore", MemOps: 10, Cores: 2})
	jd := waitJob(t, base, sub.ID)
	if jd.Status != "partial" {
		t.Fatalf("job status %q, want partial", jd.Status)
	}
	for _, pr := range jd.PointRuns {
		switch pr.Index {
		case 1:
			if pr.Status != "failed" || pr.Attempts != 3 {
				t.Fatalf("deterministic point: %+v, want failed after exactly 3 attempts", pr)
			}
			if !strings.Contains(pr.LastErr, "deterministic fault") {
				t.Fatalf("failed point lost its error: %+v", pr)
			}
		case 2:
			if pr.Status != "done" || pr.Attempts != 3 {
				t.Fatalf("flaky point: %+v, want done on attempt 3", pr)
			}
		default:
			if pr.Status != "done" {
				t.Fatalf("healthy point: %+v, want done", pr)
			}
		}
	}
	var out struct {
		Partial    bool `json:"partial"`
		Normalized bool `json:"normalized"`
	}
	if err := json.Unmarshal(getResult(t, base, sub.ID), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Partial || out.Normalized {
		t.Fatalf("partial job result flags = %+v, want partial and unnormalised", out)
	}
}

// TestSpawnFailuresShrinkPool retires slots whose workers cannot even start:
// the pool shrinks to nothing and queued points fail cleanly instead of
// pending forever.
func TestSpawnFailuresShrinkPool(t *testing.T) {
	exec := Executor(func(a Attempt, onStart func(int), stop <-chan struct{}) (*PointResult, error) {
		onStart(0)
		return nil, spawnError{errors.New("worker binary vanished")}
	})
	srv := newTestServer(t, t.TempDir(), 2, RetryPolicy{MaxAttempts: 3}, exec)
	base := "http://" + srv.Addr()

	sub := submitJob(t, base, JobSpec{Type: "explore", MemOps: 10, Cores: 2})
	jd := waitJob(t, base, sub.ID)
	if jd.Status != "partial" {
		t.Fatalf("job status %q, want partial", jd.Status)
	}
	for _, pr := range jd.PointRuns {
		if pr.Status != "failed" || !strings.Contains(pr.LastErr, "no worker slots left") {
			t.Fatalf("point %+v, want failed with pool exhaustion", pr)
		}
	}
	resp, err := http.Get(base + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var workers []workerStatus
	if err := json.NewDecoder(resp.Body).Decode(&workers); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		if w.State != "retired" {
			t.Fatalf("slot %d is %q, want retired", w.Slot, w.State)
		}
	}
}

// TestShutdownPersistsQueueForRestart kills a server mid-job and restarts
// over the same data directory: the queue survives, the restarted server
// finishes the job, and job IDs keep counting where they left off.
func TestShutdownPersistsQueueForRestart(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 16)
	blockExec := Executor(func(a Attempt, onStart func(int), stop <-chan struct{}) (*PointResult, error) {
		onStart(0)
		started <- struct{}{}
		<-stop
		return nil, ErrAborted
	})
	srv1 := newTestServer(t, dir, 1, RetryPolicy{MaxAttempts: 2}, blockExec)
	base1 := "http://" + srv1.Addr()
	sub := submitJob(t, base1, JobSpec{Type: "explore", MemOps: 20, Cores: 2})
	<-started // an attempt is in flight; shut down mid-point
	if err := srv1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, "state.json"))
	if err != nil {
		t.Fatalf("shutdown persisted no queue: %v", err)
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].ID != sub.ID {
		t.Fatalf("persisted state %+v, want job %s", st, sub.ID)
	}
	for i, p := range st.Jobs[0].Points {
		if p.Status != "pending" {
			t.Fatalf("point %d persisted as %q, want pending (aborted attempts re-queue)", i, p.Status)
		}
	}

	// Restart over the same directory with a working executor.
	srv2 := newTestServer(t, dir, 1, RetryPolicy{MaxAttempts: 2}, fakeExec(nil))
	base2 := "http://" + srv2.Addr()
	jd := waitJob(t, base2, sub.ID)
	if jd.Status != "done" {
		t.Fatalf("restarted job status %q, want done (points: %+v)", jd.Status, jd.PointRuns)
	}
	if len(getResult(t, base2, sub.ID)) == 0 {
		t.Fatal("restarted job produced no result")
	}
	sub2 := submitJob(t, base2, JobSpec{Type: "explore", MemOps: 21, Cores: 2})
	if sub2.ID == sub.ID {
		t.Fatalf("restarted server reissued job ID %s", sub.ID)
	}
}

// TestSubmitWhileDrainingIsRejected: a draining server refuses new work with
// 503 instead of accepting jobs it will never run.
func TestSubmitWhileDrainingIsRejected(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), 1, RetryPolicy{}, fakeExec(nil))
	base := "http://" + srv.Addr()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// The listener is closed after Shutdown, so exercise the handler path
	// directly: draining servers answer 503.
	body, _ := json.Marshal(JobSpec{Type: "explore", MemOps: 10, Cores: 2})
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.handleSubmit(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit answered %d, want 503", rec.Code)
	}
}
