package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Tickunits enforces the typed-unit discipline at the ns/tick boundary. The
// kernel measures time in integer picosecond ticks (sim.Tick); configuration
// surfaces — CLI flags, JSON specs, trafficgen knobs — carry nanosecond
// counts in plain integers, named with an Ns suffix by repository
// convention (powerDownNs, ITTNs, burstOffNs). The only legal crossing is
// the explicit scale: sim.Tick(xNs) * sim.Nanosecond. A bare sim.Tick(xNs)
// compiles fine and silently reinterprets nanoseconds as picoseconds — the
// classic off-by-a-thousand flavor of the off-by-tCK bug class, which no
// test catches until a 200ns idle threshold fires after 200ps and every
// power-state statistic is garbage.
//
// Two rules:
//
//  1. A conversion to sim.Tick whose operand mentions an Ns-named value must
//     be scaled by one of the sim package's unit constants (Nanosecond,
//     Microsecond, Millisecond, Second) within the same arithmetic
//     expression.
//  2. A declaration of type sim.Tick must not itself carry an Ns-flavored
//     name: ticks are not nanoseconds, and a sim.Tick named idleNs invites
//     exactly the comparison rule 1 exists to prevent.
//
// False-positive policy: the Ns naming convention is load-bearing — a
// nanosecond count stored under a tick-flavored name evades the check, so
// the convention itself is enforced by rule 2 in the direction that is
// checkable. Division and further arithmetic after the scale are fine (the
// whole binary-expression tree is searched for the unit factor).
var Tickunits = &Analyzer{
	Name: "tickunits",
	Doc:  "require ns-named values to be scaled by sim.Nanosecond when converted to kernel ticks",
	Run:  runTickunits,
}

// isNsName reports whether name follows the nanosecond-count convention.
func isNsName(name string) bool {
	return name == "ns" || strings.HasSuffix(name, "Ns") || strings.HasSuffix(name, "_ns")
}

// isSimTick reports whether t is the named type Tick from a package ending
// in "internal/sim" (suffix-matched so fixtures resolve too).
func isSimTick(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Tick" || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/sim")
}

// isSimUnitConst reports whether expr resolves to one of the sim package's
// duration constants (Nanosecond and coarser; Picosecond is the raw tick and
// scales nothing).
func isSimUnitConst(info *types.Info, expr ast.Expr) bool {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return false
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || !strings.HasSuffix(c.Pkg().Path(), "internal/sim") {
		return false
	}
	switch c.Name() {
	case "Nanosecond", "Microsecond", "Millisecond", "Second":
		return true
	}
	return false
}

// nsIdentIn returns the first Ns-named identifier mentioned in expr, or "".
func nsIdentIn(info *types.Info, expr ast.Expr) string {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || !isNsName(id.Name) {
			return true
		}
		// Only value references count; a type or package named ns would not
		// carry a nanosecond count.
		if obj := info.Uses[id]; obj != nil {
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
		}
		found = id.Name
		return false
	})
	return found
}

func runTickunits(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Rule 2: sim.Tick declarations with ns-flavored names.
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Defs[id].(*types.Var)
			if !ok || !isNsName(id.Name) || !isSimTick(v.Type()) {
				return true
			}
			pass.Reportf(id.Pos(), "%s is typed sim.Tick but named like a nanosecond count; ticks are picoseconds — rename it or keep the value in ns until the sim.Tick(...)*sim.Nanosecond boundary", id.Name)
			return true
		})

		// Rule 1: conversions of ns-named values to sim.Tick must be scaled.
		WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() || !isSimTick(tv.Type) {
				return true
			}
			nsName := nsIdentIn(info, call.Args[0])
			if nsName == "" {
				return true
			}
			if scaledByUnit(info, call, stack) {
				return true
			}
			pass.Reportf(call.Pos(), "sim.Tick(%s) reinterprets a nanosecond count as picosecond ticks; multiply by sim.Nanosecond", nsName)
			return true
		})
	}
}

// scaledByUnit reports whether the conversion at the top of stack sits
// inside an arithmetic expression that multiplies by a sim unit constant.
// The search walks up through parens and +-*/ binary nodes and then scans
// that maximal arithmetic tree for a `* unit` factor, so forms like
// sim.Tick(x)*sim.Nanosecond/4 and sim.Nanosecond*sim.Tick(x) both pass.
func scaledByUnit(info *types.Info, conv *ast.CallExpr, stack []ast.Node) bool {
	top := ast.Node(conv)
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			top = p
			continue
		case *ast.BinaryExpr:
			switch p.Op {
			case token.MUL, token.QUO, token.ADD, token.SUB:
				top = p
				continue
			}
		}
		break
	}
	scaled := false
	ast.Inspect(top, func(n ast.Node) bool {
		if scaled {
			return false
		}
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.MUL {
			if isSimUnitConst(info, b.X) || isSimUnitConst(info, b.Y) {
				scaled = true
				return false
			}
		}
		return true
	})
	return scaled
}
