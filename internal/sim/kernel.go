package sim

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// diagNow mirrors the most recently executing kernel's tick, so components
// that hold no kernel reference (e.g. mem ports) can stamp diagnostics with
// *when* a protocol violation happened. It is best-effort by design: with
// several kernels in one process it reflects whichever stepped last. Stored
// atomically so concurrent test binaries stay race-clean.
var diagNow atomic.Int64

// CurrentTick returns the tick of the most recently executing kernel in this
// process. It exists purely for diagnostics (panic messages, log lines) in
// code that has no kernel reference; model logic must use Kernel.Now.
func CurrentTick() Tick { return Tick(diagNow.Load()) }

// eventHeap implements container/heap over scheduled events ordered by
// (when, priority, seq). The sequence number makes execution order fully
// deterministic for events with equal tick and priority: they run in the
// order they were scheduled.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.when != b.when {
		return a.when < b.when
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.heapIndex = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.heapIndex = -1
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event scheduler. All model components in a
// simulation share one kernel; it owns simulated time.
type Kernel struct {
	now     Tick
	queue   eventHeap
	nextSeq uint64
	// executed counts events fired since construction (model performance
	// statistics in §III-D report events and host time).
	executed uint64
	stopped  bool

	// Watchdog state (see watchdog.go): sameTick counts consecutive events
	// executed without simulated time advancing, the livelock signature.
	wd       Watchdog
	sameTick uint64
}

// NewKernel returns a kernel with time at tick zero and an empty queue.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated tick.
func (k *Kernel) Now() Tick { return k.now }

// EventsExecuted returns the number of events fired so far; this is the
// denominator for "the event-based model only executes when something
// changes" comparisons against the cycle-based baseline.
func (k *Kernel) EventsExecuted() uint64 { return k.executed }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule arranges for e to fire at tick when. Scheduling in the past (or
// double-scheduling an event) is a programming error and panics, exactly as
// gem5 asserts on it: silent time travel corrupts every timing the model
// produces.
func (k *Kernel) Schedule(e *Event, when Tick) {
	if e.scheduled {
		panic(fmt.Sprintf("sim: event %q already scheduled for %s", e.name, e.when))
	}
	if when < k.now {
		panic(fmt.Sprintf("sim: event %q scheduled for %s, before now (%s)", e.name, when, k.now))
	}
	e.when = when
	e.seq = k.nextSeq
	k.nextSeq++
	e.scheduled = true
	heap.Push(&k.queue, e)
}

// ScheduleIn schedules e after delay from the current tick.
func (k *Kernel) ScheduleIn(e *Event, delay Tick) { k.Schedule(e, k.now+delay) }

// Deschedule removes a scheduled event from the queue. Descheduling an
// unscheduled event panics.
func (k *Kernel) Deschedule(e *Event) {
	if !e.scheduled {
		panic(fmt.Sprintf("sim: event %q not scheduled", e.name))
	}
	heap.Remove(&k.queue, e.heapIndex)
	e.scheduled = false
}

// Reschedule moves a scheduled event to a new tick, or schedules it if it is
// not currently pending.
func (k *Kernel) Reschedule(e *Event, when Tick) {
	if e.scheduled {
		k.Deschedule(e)
	}
	k.Schedule(e, when)
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Pending events stay queued.
func (k *Kernel) Stop() { k.stopped = true }

// step fires the earliest event. It must only be called when the queue is
// non-empty.
func (k *Kernel) step() {
	e := heap.Pop(&k.queue).(*Event)
	if e.when < k.now {
		panic(fmt.Sprintf("sim: queue corruption, event %q scheduled for %s is in the past (now %s)",
			e.name, e.when, k.now))
	}
	if e.when == k.now {
		k.sameTick++
	} else {
		k.sameTick = 1
	}
	k.now = e.when
	diagNow.Store(int64(e.when))
	e.scheduled = false
	k.executed++
	e.callback()
}

// Run executes events until the queue drains or Stop is called. It returns
// the tick of the last executed event. A tripped watchdog panics with the
// pending-queue dump; embedders that would rather handle the failure use
// RunErr.
func (k *Kernel) Run() Tick {
	now, err := k.RunErr()
	if err != nil {
		panic(err.Error())
	}
	return now
}

// RunErr is Run with graceful failure: a tripped watchdog returns a
// *WatchdogError (carrying the pending event queue) instead of panicking.
func (k *Kernel) RunErr() (Tick, error) {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		if err := k.checkWatchdog(); err != nil {
			return k.now, err
		}
		k.step()
	}
	return k.now, nil
}

// RunUntil executes events with when <= limit. Time is left at the limit if
// the queue still holds later events, so a subsequent RunUntil continues
// seamlessly. It returns the current tick, and panics if the watchdog trips
// (use RunUntilErr to handle that gracefully).
func (k *Kernel) RunUntil(limit Tick) Tick {
	now, err := k.RunUntilErr(limit)
	if err != nil {
		panic(err.Error())
	}
	return now
}

// RunUntilErr is RunUntil with graceful failure: a tripped watchdog returns
// a *WatchdogError instead of panicking.
func (k *Kernel) RunUntilErr(limit Tick) (Tick, error) {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		if k.queue[0].when > limit {
			k.now = limit
			return k.now, nil
		}
		if err := k.checkWatchdog(); err != nil {
			return k.now, err
		}
		k.step()
	}
	if k.now < limit {
		k.now = limit
	}
	return k.now, nil
}
