package cyclesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// harness mirrors the event-model test harness for the cycle-based baseline.
type harness struct {
	k    *sim.Kernel
	c    *Controller
	port *mem.RequestPort

	responses []*mem.Packet
	respTicks []sim.Tick
	blocked   *mem.Packet
	retries   int
}

func (h *harness) RecvTimingResp(pkt *mem.Packet) bool {
	h.responses = append(h.responses, pkt)
	h.respTicks = append(h.respTicks, h.k.Now())
	return true
}

func (h *harness) RecvReqRetry() {
	h.retries++
	if h.blocked != nil {
		pkt := h.blocked
		h.blocked = nil
		if !h.port.SendTimingReq(pkt) {
			h.blocked = pkt
		}
	}
}

func (h *harness) send(pkt *mem.Packet) bool {
	pkt.IssueTick = h.k.Now()
	if !h.port.SendTimingReq(pkt) {
		h.blocked = pkt
		return false
	}
	return true
}

func (h *harness) at(when sim.Tick, fn func()) {
	h.k.Schedule(sim.NewEvent("test", fn), when)
}

func (h *harness) run(maxTicks sim.Tick) {
	limit := h.k.Now() + maxTicks
	for h.k.Now() < limit {
		h.k.RunUntil(h.k.Now() + 100*sim.Nanosecond)
		if h.c.Quiescent() && h.blocked == nil {
			return
		}
	}
}

func newHarness(t *testing.T, mutate func(*Config)) *harness {
	t.Helper()
	k := sim.NewKernel()
	cfg := DefaultConfig(dram.DDR3_1600_x64())
	if mutate != nil {
		mutate(&cfg)
	}
	reg := stats.NewRegistry("test")
	c, err := NewController(k, cfg, reg, "dramsim")
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{k: k, c: c}
	h.port = mem.NewRequestPort("gen", h, k)
	mem.Connect(h.port, c.Port())
	return h
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(dram.DDR3_1600_x64()).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.TransQueueSize = 0 },
		func(c *Config) { c.Page = PagePolicy(9) },
		func(c *Config) { c.Scheduling = Scheduling(9) },
		func(c *Config) { c.Channels = 5 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig(dram.DDR3_1600_x64())
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if OpenPage.String() != "open" || ClosedPage.String() != "closed" {
		t.Error("page policy names wrong")
	}
}

// A single read completes within a few cycles of the analytic
// tRCD + tCL + tBURST (cycle quantisation adds at most a few tCK).
func TestSingleReadLatency(t *testing.T) {
	h := newHarness(t, nil)
	tm := h.c.spec.Timing
	h.at(0, func() { h.send(mem.NewRead(0, 64, 0, 0)) })
	h.run(10 * sim.Microsecond)
	if len(h.responses) != 1 {
		t.Fatalf("responses = %d", len(h.responses))
	}
	analytic := tm.TRCD + tm.TCL + tm.TBURST
	got := h.respTicks[0]
	if got < analytic || got > analytic+5*tm.TCK {
		t.Fatalf("latency = %s, want within [%s, %s+5tCK]", got, analytic, analytic)
	}
}

// Writes are acknowledged immediately, like the event-based model (§III-C2).
func TestImmediateWriteAck(t *testing.T) {
	h := newHarness(t, nil)
	h.at(0, func() { h.send(mem.NewWrite(0, 64, 0, 0)) })
	h.run(10 * sim.Microsecond)
	if len(h.responses) != 1 || h.responses[0].Cmd != mem.WriteResp {
		t.Fatalf("responses = %v", h.responses)
	}
	if h.respTicks[0] > 2*h.c.spec.Timing.TCK {
		t.Fatalf("write ack at %s, want within two cycles", h.respTicks[0])
	}
	// The write still drains to the DRAM.
	if h.c.st.bytesWritten.Value() != 64 {
		t.Fatalf("bytesWritten = %v", h.c.st.bytesWritten.Value())
	}
}

// Row hits are recognised and pipelined.
func TestRowHitCounting(t *testing.T) {
	h := newHarness(t, nil)
	h.at(0, func() {
		for i := 0; i < 4; i++ {
			h.send(mem.NewRead(mem.Addr(i*64), 64, 0, 0))
		}
	})
	h.run(10 * sim.Microsecond)
	if h.c.st.activations.Value() != 1 {
		t.Fatalf("activations = %v, want 1", h.c.st.activations.Value())
	}
	if h.c.st.readRowHits.Value() != 3 {
		t.Fatalf("hits = %v, want 3", h.c.st.readRowHits.Value())
	}
}

// Closed page auto-precharges after every access.
func TestClosedPage(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.Page = ClosedPage })
	h.at(0, func() {
		for i := 0; i < 4; i++ {
			h.send(mem.NewRead(mem.Addr(i*64), 64, 0, 0))
		}
	})
	h.run(10 * sim.Microsecond)
	if h.c.st.activations.Value() != 4 || h.c.st.readRowHits.Value() != 0 {
		t.Fatalf("activations=%v hits=%v", h.c.st.activations.Value(), h.c.st.readRowHits.Value())
	}
	if h.c.st.precharges.Value() != 4 {
		t.Fatalf("precharges = %v", h.c.st.precharges.Value())
	}
}

// The unified queue interleaves reads and writes in arrival order — the
// architectural difference from the event-based model's write drain.
func TestInterleavedReadsWrites(t *testing.T) {
	h := newHarness(t, nil)
	h.at(0, func() {
		h.send(mem.NewWrite(0, 64, 0, 0))
		h.send(mem.NewRead(64, 64, 0, 0))
		h.send(mem.NewWrite(128, 64, 0, 0))
		h.send(mem.NewRead(192, 64, 0, 0))
	})
	h.run(10 * sim.Microsecond)
	if h.c.st.bytesWritten.Value() != 128 || h.c.st.bytesRead.Value() != 128 {
		t.Fatalf("rw bytes = %v/%v", h.c.st.bytesRead.Value(), h.c.st.bytesWritten.Value())
	}
	// All four to the same row: one activation, three hits.
	if h.c.st.activations.Value() != 1 {
		t.Fatalf("activations = %v", h.c.st.activations.Value())
	}
}

// Queue-full refusals retry once space frees.
func TestQueueFullRetry(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.TransQueueSize = 1 })
	h.at(0, func() {
		if !h.send(mem.NewRead(0, 64, 0, 0)) {
			t.Error("first refused")
		}
		if h.send(mem.NewRead(1<<20, 64, 0, 0)) {
			t.Error("second accepted beyond capacity")
		}
	})
	h.run(20 * sim.Microsecond)
	if h.retries == 0 || len(h.responses) != 2 {
		t.Fatalf("retries=%d responses=%d", h.retries, len(h.responses))
	}
}

// Refresh happens roughly every tREFI and delays colliding reads.
func TestRefresh(t *testing.T) {
	h := newHarness(t, nil)
	tm := h.c.spec.Timing
	h.k.RunUntil(10 * tm.TREFI)
	got := h.c.st.refreshes.Value()
	if got < 9 || got > 11 {
		t.Fatalf("refreshes = %v", got)
	}
}

// Multi-burst requests are chopped and produce one response.
func TestChopping(t *testing.T) {
	h := newHarness(t, nil)
	h.at(0, func() { h.send(mem.NewRead(32, 128, 0, 0)) }) // unaligned, 3 bursts
	h.run(10 * sim.Microsecond)
	if len(h.responses) != 1 {
		t.Fatalf("responses = %d", len(h.responses))
	}
	if h.c.st.readBursts.Value() != 3 {
		t.Fatalf("bursts = %v, want 3", h.c.st.readBursts.Value())
	}
}

// The cycle counter demonstrates the per-cycle cost: simulating N busy
// cycles executes ~N tick events, far more than the event-based model needs.
func TestCycleCounting(t *testing.T) {
	h := newHarness(t, nil)
	h.at(0, func() {
		for i := 0; i < 32; i++ {
			h.send(mem.NewRead(mem.Addr(i*64), 64, 0, 0))
		}
	})
	h.run(10 * sim.Microsecond)
	if h.c.CyclesTicked() < 50 {
		t.Fatalf("cycles ticked = %d, implausibly few for 32 bursts", h.c.CyclesTicked())
	}
}

func TestReportingHelpers(t *testing.T) {
	h := newHarness(t, nil)
	h.at(0, func() {
		for i := 0; i < 8; i++ {
			h.send(mem.NewRead(mem.Addr(i*64), 64, 0, 0))
		}
	})
	h.run(10 * sim.Microsecond)
	if u := h.c.BusUtilisation(); u <= 0 || u > 1 {
		t.Fatalf("util = %v", u)
	}
	if h.c.Bandwidth() <= 0 {
		t.Fatal("no bandwidth")
	}
	if hr := h.c.RowHitRate(); hr != 7.0/8 {
		t.Fatalf("hit rate = %v", hr)
	}
	if h.c.AvgReadLatencyNs() <= 0 {
		t.Fatal("no latency")
	}
	ps := h.c.PowerStats()
	if ps.ReadBursts != 8 || ps.Activations != 1 || ps.Elapsed <= 0 {
		t.Fatalf("power stats = %+v", ps)
	}
}

// FCFS serves strictly in order even when a younger row hit is ready.
func TestFCFSOrder(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.Scheduling = FCFS })
	org := h.c.spec.Org
	conflict := mem.Addr(org.RowBufferBytes * uint64(org.BanksPerRank))
	h.at(0, func() { h.send(mem.NewRead(0, 64, 0, 0)) })
	h.at(sim.Nanosecond, func() {
		h.send(mem.NewRead(conflict, 64, 0, 0)) // older, conflict
		h.send(mem.NewRead(64, 64, 0, 0))       // younger, hit
	})
	h.run(20 * sim.Microsecond)
	if len(h.responses) != 3 {
		t.Fatalf("responses = %d", len(h.responses))
	}
	if h.responses[1].Addr != conflict {
		t.Fatalf("FCFS order violated: second response %v", h.responses[1].Addr)
	}
}

// FR-FCFS prefers the ready row hit.
func TestFRFCFSPrefersHit(t *testing.T) {
	h := newHarness(t, nil)
	org := h.c.spec.Org
	conflict := mem.Addr(org.RowBufferBytes * uint64(org.BanksPerRank))
	h.at(0, func() { h.send(mem.NewRead(0, 64, 0, 0)) })
	h.at(sim.Nanosecond, func() {
		h.send(mem.NewRead(conflict, 64, 0, 0))
		h.send(mem.NewRead(64, 64, 0, 0))
	})
	h.run(20 * sim.Microsecond)
	if h.responses[1].Addr != 64 {
		t.Fatalf("FR-FCFS did not prefer the hit: %v", h.responses[1].Addr)
	}
}

// Property: random traffic conserves requests and leaves no residue.
func TestRandomTrafficConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel()
		cfg := DefaultConfig(dram.DDR3_1600_x64())
		if rng.Intn(2) == 0 {
			cfg.Page = ClosedPage
		}
		reg := stats.NewRegistry("t")
		c, err := NewController(k, cfg, reg, "dramsim")
		if err != nil {
			return false
		}
		h := &harness{k: k, c: c}
		h.port = mem.NewRequestPort("gen", h, k)
		mem.Connect(h.port, c.Port())

		n := 80
		sent := 0
		var inject func()
		inject = func() {
			if sent >= n {
				return
			}
			if h.blocked == nil {
				addr := mem.Addr(rng.Intn(1<<26)) &^ 63
				if rng.Intn(2) == 0 {
					h.send(mem.NewRead(addr, 64, 0, k.Now()))
				} else {
					h.send(mem.NewWrite(addr, 64, 0, k.Now()))
				}
				sent++
			}
			k.Schedule(sim.NewEvent("inject", inject), k.Now()+sim.Tick(rng.Intn(30))*sim.Nanosecond)
		}
		k.Schedule(sim.NewEvent("inject", inject), 0)
		for i := 0; i < 10000 && !(sent >= n && c.Quiescent() && h.blocked == nil); i++ {
			k.RunUntil(k.Now() + sim.Microsecond)
		}
		return len(h.responses) == n && c.Quiescent()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Determinism of the cycle-based model.
func TestDeterminism(t *testing.T) {
	runOnce := func() []sim.Tick {
		k := sim.NewKernel()
		cfg := DefaultConfig(dram.DDR3_1600_x64())
		reg := stats.NewRegistry("t")
		c, _ := NewController(k, cfg, reg, "dramsim")
		h := &harness{k: k, c: c}
		h.port = mem.NewRequestPort("gen", h, k)
		mem.Connect(h.port, c.Port())
		rng := rand.New(rand.NewSource(11))
		h.at(0, func() {
			for i := 0; i < 30; i++ {
				addr := mem.Addr(rng.Intn(1<<22) &^ 63)
				if rng.Intn(2) == 0 {
					h.send(mem.NewRead(addr, 64, 0, 0))
				} else {
					h.send(mem.NewWrite(addr, 64, 0, 0))
				}
			}
		})
		h.run(100 * sim.Microsecond)
		return h.respTicks
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestToCycles(t *testing.T) {
	tm := dram.DDR3_1600_x64().Timing // tCK = 1.25 ns
	c := toCycles(tm)
	if c.tBURST != 4 { // 5 ns / 1.25 ns
		t.Fatalf("tBURST = %d cycles, want 4", c.tBURST)
	}
	if c.tRCD != 11 { // ceil(13.75/1.25) = 11
		t.Fatalf("tRCD = %d cycles, want 11", c.tRCD)
	}
	if c.tREFI != 6240 {
		t.Fatalf("tREFI = %d cycles, want 6240", c.tREFI)
	}
}

// refusingHarness refuses the first responses, exercising the cycle model's
// response-retry path.
func TestResponseRetryPath(t *testing.T) {
	h := newHarness(t, nil)
	refuse := 2
	orig := h.c
	_ = orig
	// Wrap: intercept via a custom requestor.
	k := sim.NewKernel()
	cfg := DefaultConfig(dram.DDR3_1600_x64())
	reg := stats.NewRegistry("t2")
	c, err := NewController(k, cfg, reg, "dramsim")
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	var port *mem.RequestPort
	r := &funcRequestor{
		onResp: func(pkt *mem.Packet) bool {
			if refuse > 0 {
				refuse--
				k.Schedule(sim.NewEvent("retry", func() { port.SendRespRetry() }), k.Now()+20*sim.Nanosecond)
				return false
			}
			delivered++
			return true
		},
	}
	port = mem.NewRequestPort("gen", r, k)
	mem.Connect(port, c.Port())
	k.Schedule(sim.NewEvent("inject", func() {
		for i := 0; i < 3; i++ {
			port.SendTimingReq(mem.NewRead(mem.Addr(i*64), 64, 0, k.Now()))
		}
	}), 0)
	k.RunUntil(10 * sim.Microsecond)
	if delivered != 3 {
		t.Fatalf("delivered = %d, want 3", delivered)
	}
	if c.Name() != "dramsim" {
		t.Fatalf("Name = %q", c.Name())
	}
	// Energy accessors exercised.
	e := c.Energy()
	if e.TotalPJ() <= 0 {
		t.Fatal("no energy integrated")
	}
}

// funcRequestor adapts closures to mem.Requestor.
type funcRequestor struct {
	onResp func(*mem.Packet) bool
}

func (f *funcRequestor) RecvTimingResp(pkt *mem.Packet) bool { return f.onResp(pkt) }
func (f *funcRequestor) RecvReqRetry()                       {}

// IdleSkip mode parks the clock between work, cutting simulated cycles
// without changing results.
func TestIdleSkipEquivalence(t *testing.T) {
	run := func(skip bool) (sim.Tick, uint64) {
		h := newHarness(t, func(c *Config) { c.IdleSkip = skip })
		// Two widely spaced requests with a long idle gap.
		h.at(0, func() { h.send(mem.NewRead(0, 64, 0, 0)) })
		h.at(3*sim.Microsecond, func() { h.send(mem.NewRead(4096, 64, 0, 0)) })
		h.k.RunUntil(4 * sim.Microsecond)
		if len(h.respTicks) != 2 {
			t.Fatalf("responses = %d", len(h.respTicks))
		}
		return h.respTicks[1], h.c.CyclesTicked()
	}
	tickAlways, cyclesAlways := run(false)
	tickSkip, cyclesSkip := run(true)
	if tickAlways != tickSkip {
		t.Fatalf("idle skip changed timing: %s vs %s", tickSkip, tickAlways)
	}
	if cyclesSkip >= cyclesAlways {
		t.Fatalf("idle skip did not reduce cycles: %d vs %d", cyclesSkip, cyclesAlways)
	}
}
