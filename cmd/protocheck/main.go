// Command protocheck replays a request stream (a trace file or a synthetic
// pattern) through the event-based controller under an arbitrary
// configuration, captures the DRAM command stream the controller issues,
// and verifies every timing constraint with the independent protocol
// checker — a configuration linter: if a policy combination ever produced
// an illegal command schedule, this is the tool that would catch it.
//
//	protocheck -spec DDR3-1600-x64 -page closed -requests 50000
//	protocheck -trace-in capture.txt -spec LPDDR3-1600-x32
//	protocheck -spec DDR3-1600-x64 -trace run.json   # Perfetto trace + span citations
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments/cliconfig"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trafficgen"
)

func main() {
	var (
		spec     = cliconfig.AddSpec(flag.CommandLine, "DDR3-1600-x64")
		pol      = cliconfig.AddPolicy(flag.CommandLine, cliconfig.PolicyFlags{})
		requests = cliconfig.AddRequests(flag.CommandLine, 20000, "synthetic requests (ignored with -trace-in)")
		reads    = flag.Int("reads", 67, "read percentage for synthetic traffic")
		seed     = flag.Int64("seed", 1, "synthetic traffic seed")
		traceIn  = flag.String("trace-in", "", "replay this trace file instead")
		traceOut = flag.String("trace", "", "write a Chrome/Perfetto trace here; violations cite its spans")
		maxShow  = flag.Int("show", 10, "maximum violations to print")
	)
	flag.Parse()
	if err := run(spec, pol, *requests, *reads, *seed, *traceIn, *traceOut, *maxShow); err != nil {
		fmt.Fprintln(os.Stderr, "protocheck:", err)
		os.Exit(1)
	}
}

func run(sf *cliconfig.Spec, pol *cliconfig.Policy, requests uint64, reads int, seed int64, traceIn, traceOut string, maxShow int) error {
	spec, err := sf.Resolve()
	if err != nil {
		return err
	}
	mapping, err := pol.ParseMapping()
	if err != nil {
		return err
	}

	k := sim.NewKernel()
	reg := stats.NewRegistry("protocheck")
	var trace power.CommandTrace
	hub := obs.NewHub()
	hub.Attach(obs.CommandFunc(trace.Record))
	var sink *obs.TraceSink
	if traceOut != "" {
		tw, err := obs.NewTraceWriter(traceOut)
		if err != nil {
			return err
		}
		if err := tw.BeginFresh(); err != nil {
			return err
		}
		tracer := obs.NewTracer(0)
		hub.Attach(tracer)
		sink = obs.NewTraceSink(tw, tracer)
	}
	cfg := core.DefaultConfig(spec)
	cfg.Mapping = mapping
	cfg.Probes = hub
	if cfg.Page, err = pol.CorePage(); err != nil {
		return err
	}
	ctrl, err := core.NewController(k, cfg, reg, "mc")
	if err != nil {
		return err
	}

	done := func() bool { return false }
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		recs, err := trafficgen.ParseTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		player := trafficgen.NewTracePlayer(k, recs, 0)
		mem.Connect(player.Port(), ctrl.Port())
		player.Start()
		done = player.Done
		fmt.Printf("replaying %d records from %s\n", len(recs), traceIn)
	} else {
		gen, err := trafficgen.New(k, trafficgen.Config{
			RequestBytes:   64,
			MaxOutstanding: 32,
			Count:          requests,
		}, &trafficgen.Random{
			Start: 0, End: 1 << 28, Align: 64, ReadPercent: reads, Seed: seed,
		}, reg, "gen")
		if err != nil {
			return err
		}
		mem.Connect(gen.Port(), ctrl.Port())
		gen.Start()
		done = gen.Done
	}

	for k.Now() < 100*sim.Second {
		if _, err := k.RunUntilErr(k.Now() + 10*sim.Microsecond); err != nil {
			return err
		}
		if done() {
			if !ctrl.Quiescent() {
				ctrl.Drain()
				continue
			}
			break
		}
	}
	if !done() {
		return fmt.Errorf("simulation did not complete by %s", k.Now())
	}
	var cite func(power.Violation) string
	if sink != nil {
		if err := sink.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", traceOut)
		cite, err = traceCiter(traceOut)
		if err != nil {
			return err
		}
	}

	violations := power.CheckTiming(spec, trace.Commands())
	fmt.Printf("checked %d DRAM commands against %s (%s page, %s)\n",
		trace.Len(), spec.Name, pol.Page, mapping)
	if len(violations) == 0 {
		fmt.Println("protocol clean: no timing violations")
		return nil
	}
	fmt.Printf("%d violations:\n", len(violations))
	for i, v := range violations {
		if i >= maxShow {
			fmt.Printf("  ... and %d more\n", len(violations)-maxShow)
			break
		}
		fmt.Printf("  %s\n", v)
		if cite != nil {
			if c := cite(v); c != "" {
				fmt.Printf("    %s\n", c)
			}
		}
	}
	os.Exit(1)
	return nil
}

// traceCiter reads the just-written trace back and returns a function that
// locates the trace event a violating command rendered as, so findings can
// be cross-referenced with the Perfetto view: RD/WR map to "burst" spans,
// ACT/PRE to "cmd" instants, REF to "refresh" spans — all identified by
// their exact tick-derived timestamp. When a packet-lifecycle firstCmd
// marker shares the timestamp, its async span id is cited too.
func traceCiter(path string) (func(power.Violation) string, error) {
	_, events, err := obs.ReadTraceFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading back trace %s: %w", path, err)
	}
	byTs := make(map[string][]obs.TraceEvent)
	for _, e := range events {
		if e.Ph == "M" {
			continue
		}
		byTs[e.Ts.String()] = append(byTs[e.Ts.String()], e)
	}
	return func(v power.Violation) string {
		ts := fmt.Sprintf("%d.%06d", int64(v.Cmd.At)/1_000_000, int64(v.Cmd.At)%1_000_000)
		var wantCat, wantName string
		switch v.Cmd.Kind {
		case power.CmdRD:
			wantCat, wantName = "burst", "RD"
		case power.CmdWR:
			wantCat, wantName = "burst", "WR"
		case power.CmdREF:
			wantCat, wantName = "refresh", "REF"
		default:
			wantCat, wantName = "cmd", v.Cmd.Kind.String()
		}
		var spanID uint64
		var haveSpan bool
		for _, e := range byTs[ts] {
			if e.Cat == "pkt" && e.Ph == "n" {
				spanID, haveSpan = e.ID, true
			}
		}
		for _, e := range byTs[ts] {
			if e.Cat != wantCat || e.Name != wantName {
				continue
			}
			c := fmt.Sprintf("trace: %s %q pid=%d tid=%d ts=%sus", e.Cat, e.Name, e.Pid, e.Tid, e.Ts)
			if haveSpan {
				c += fmt.Sprintf(" span=%d", spanID)
			}
			return c
		}
		return ""
	}, nil
}
