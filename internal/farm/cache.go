package farm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/checkpoint"
)

// Cache is the on-disk point-result cache: one JSON file per point,
// named by the point fingerprint (schema version + canonical key), written
// atomically. Because point results are deterministic, a hit is as good as a
// re-run — a resubmitted job completes without simulating anything.
type Cache struct {
	dir string
}

// cacheEntry stores the key alongside the result so a fingerprint collision
// (or a stale file from a buggy build) is detected instead of trusted.
type cacheEntry struct {
	Key    string       `json:"key"`
	Result *PointResult `json:"result"`
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(p Point) string {
	return filepath.Join(c.dir, p.Fingerprint()+".json")
}

// Get returns the cached result for p, or nil on any miss — absent file,
// unreadable JSON, key mismatch. A damaged entry is just a miss: the point
// re-runs and Put overwrites it.
func (c *Cache) Get(p Point) *PointResult {
	data, err := os.ReadFile(c.path(p))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil
	}
	if e.Key != p.Key() || e.Result == nil || e.Result.Key != p.Key() {
		return nil
	}
	return e.Result
}

// Put stores res as p's result, atomically (temp+rename), so a crash mid-Put
// can never leave a torn entry for Get to trip over.
func (c *Cache) Put(p Point, res *PointResult) error {
	data, err := json.MarshalIndent(cacheEntry{Key: p.Key(), Result: res}, "", "  ")
	if err != nil {
		return fmt.Errorf("farm: cache encode: %w", err)
	}
	if err := checkpoint.WriteFileAtomic(c.path(p), append(data, '\n')); err != nil {
		return fmt.Errorf("farm: cache write: %w", err)
	}
	return nil
}
