package supervisor

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func schedule(b Backoff, key string, n int) []time.Duration {
	out := make([]time.Duration, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, b.Delay(key, i))
	}
	return out
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Seed: 42}
	first := schedule(b, "point-3", 8)
	second := schedule(b, "point-3", 8)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("attempt %d: %s then %s — schedule not deterministic", i+1, first[i], second[i])
		}
	}
	// The jittered exponential stays inside [base*2^(n-1), 1.5*base*2^(n-1)]
	// until the cap takes over, and never exceeds the cap.
	for i, d := range first {
		lo := 10 * time.Millisecond << i
		hi := lo + lo/2
		if hi > time.Second {
			hi = time.Second
		}
		if lo > time.Second {
			lo = time.Second
		}
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", i+1, d, lo, hi)
		}
	}
	// A different seed must shift at least one delay (jitter actually jitters).
	other := schedule(Backoff{Base: 10 * time.Millisecond, Max: time.Second, Seed: 43}, "point-3", 8)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules; jitter ignores the seed")
	}
	// Different keys spread out too, from the same seed.
	if b.Delay("point-3", 1) == b.Delay("point-4", 1) {
		t.Fatal("different keys got identical first delays; jitter ignores the key")
	}
}

func TestBackoffZeroAndBounds(t *testing.T) {
	var zero Backoff
	if d := zero.Delay("k", 3); d != 0 {
		t.Fatalf("zero backoff delayed %s, want 0", d)
	}
	b := Backoff{Base: time.Millisecond, Max: 50 * time.Millisecond}
	if d := b.Delay("k", 0); d != 0 {
		t.Fatalf("attempt 0 delayed %s, want 0", d)
	}
	// A huge attempt number must not overflow past the cap.
	if d := b.Delay("k", 10_000); d != 50*time.Millisecond {
		t.Fatalf("attempt 10000 delayed %s, want the 50ms cap", d)
	}
}

// TestDeterministicFailureIsBoundedAndPaced drives a session that fails the
// same way on every rebuild: the supervisor must sleep the deterministic
// backoff schedule between attempts, stop at MaxRetries, and report the
// failure — not retry forever.
func TestDeterministicFailureIsBoundedAndPaced(t *testing.T) {
	var slept []time.Duration
	defer func(orig func(time.Duration)) { sleepRetry = orig }(sleepRetry)
	sleepRetry = func(d time.Duration) { slept = append(slept, d) }

	b := Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 7}
	h := &harness{total: 10, failAt: 4, nFail: 100} // fails deterministically, every segment
	var log bytes.Buffer
	res, err := Run(Config{
		Checkpoint: filepath.Join(t.TempDir(), "run.ckpt"),
		Every:      2 * sim.Microsecond, // sim-periodic checkpoints so retries resume
		MaxRetries: 3,
		Backoff:    b,
		Log:        &log,
	}, h.factory)
	if err == nil || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("err = %v, want the deterministic failure reported", err)
	}
	if res.Done {
		t.Fatal("a point that fails deterministically was reported as done")
	}
	// Retries counts failures that were retried or gave up: 3 retried + the
	// final give-up. The budget bounds the loop; it does not run forever.
	if res.Retries != 4 {
		t.Fatalf("retries = %d, want 4 (3 retried + 1 gave up)", res.Retries)
	}
	if h.builds != 4 {
		t.Fatalf("builds = %d, want 4 (initial + 3 retries)", h.builds)
	}
	want := []time.Duration{b.Delay("segment", 1), b.Delay("segment", 2), b.Delay("segment", 3)}
	if len(slept) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(slept), slept, len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("retry %d slept %s, want %s (deterministic schedule)", i+1, slept[i], want[i])
		}
	}
}
