package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trafficgen"
	"repro/internal/xbar"
)

// This file measures the sharded (parallel per-channel) rig against its own
// serial schedule: identical topology, identical statistics (asserted, not
// assumed), wall-clock compared across worker counts. This is the headline
// claim of the parallel kernel work — determinism is free, speedup scales
// with channels on a multi-core host — and the numbers land in BENCH_3.json.
//
// Honesty matters more than a flattering number: a host with fewer hardware
// threads than workers cannot scale, so every row records whether it was
// undersubscribed, and consumers (the CI guardrail in particular) must not
// read speedups off undersubscribed rows.

// ParallelRow is one (case, channels, workers) wall-clock measurement.
type ParallelRow struct {
	// Case names the workload: "saturating" (generators never idle) or
	// "spaced" (inter-transaction gaps, where the adaptive horizon pays).
	Case     string        `json:"case"`
	Channels int           `json:"channels"`
	Workers  int           `json:"workers"`
	Host     time.Duration `json:"hostNs"`
	// AggregateGBs is the summed channel bandwidth, as a sanity check that
	// every configuration simulated the same traffic.
	AggregateGBs float64 `json:"aggregateGBs"`
	// Speedup is serial host time over this row's host time, within the same
	// (case, channels) cell (workers=1 rows therefore read 1.0).
	Speedup float64 `json:"speedup"`
	// Deterministic reports whether this row's full statistics dump was
	// byte-identical to the serial run's.
	Deterministic bool `json:"deterministic"`
	// Barriers counts the quantum barriers the run executed. With adaptive
	// lookahead the spaced case shows the reduction directly.
	Barriers uint64 `json:"barriers"`
	// Undersubscribed marks a row that asked for more workers than the host
	// can actually run in parallel (min of GOMAXPROCS and CPU count). Its
	// Speedup is then a measurement of goroutine overhead, not of scaling,
	// and must not back any scaling claim.
	Undersubscribed bool `json:"undersubscribed,omitempty"`
}

// ParallelResult aggregates the sharded-rig scaling measurement.
type ParallelResult struct {
	HostCPUs   int    `json:"hostCPUs"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Requests   uint64 `json:"requestsPerGen"`
	// AdaptiveQuanta is the ShardedConfig.AdaptiveQuanta every row ran with
	// (1 = fixed quantum). Part of the schedule, hence recorded.
	AdaptiveQuanta int `json:"adaptiveQuanta"`
	// Undersubscribed is true when ANY row was undersubscribed; a baseline
	// carrying this flag is not a scaling baseline.
	Undersubscribed bool          `json:"undersubscribed"`
	Rows            []ParallelRow `json:"rows"`
}

// hardwareParallelism is the number of workers the host can genuinely run
// at once.
func hardwareParallelism() int {
	hw := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < hw {
		hw = n
	}
	return hw
}

// parallelWorkload builds the sharded workload: one mixed linear/random
// generator per channel (minimum two generators), so offered load grows with
// the channel count and every channel stays busy. spaced throttles every
// generator with an inter-transaction gap, modelling the sub-saturation
// traffic where the adaptive horizon collapses idle barriers.
func parallelWorkload(channels, workers, quanta int, requests uint64, spaced bool) system.ShardedConfig {
	spec := dram.DDR3_1333_8x8()
	nGens := channels
	if nGens < 2 {
		nGens = 2
	}
	gens := make([]trafficgen.Config, nGens)
	patterns := make([]trafficgen.Pattern, nGens)
	for i := range gens {
		gens[i] = trafficgen.Config{
			RequestBytes:   spec.Org.BurstBytes(),
			MaxOutstanding: 32,
			Count:          requests,
			RequestorID:    i,
		}
		if spaced {
			gens[i].InterTransaction = 200 * sim.Nanosecond
		}
		if i%2 == 0 {
			patterns[i] = &trafficgen.Linear{
				Start: 0, End: 1 << 26, Step: spec.Org.BurstBytes(),
				ReadPercent: 80, Seed: int64(11 + i),
			}
		} else {
			patterns[i] = &trafficgen.Random{
				Start: 0, End: 1 << 26, Align: spec.Org.BurstBytes(),
				ReadPercent: 60, Seed: int64(23 + i),
			}
		}
	}
	return system.ShardedConfig{
		Kind:           system.EventBased,
		Spec:           spec,
		Mapping:        dram.RoRaBaCoCh,
		Channels:       channels,
		Xbar:           xbar.Config{Latency: 2 * sim.Nanosecond, QueueDepth: 64},
		Gens:           gens,
		Patterns:       patterns,
		Workers:        workers,
		AdaptiveQuanta: quanta,
	}
}

// runParallelPoint runs one sharded configuration to completion and returns
// host time, aggregate bandwidth, barrier count and the statistics dump.
func runParallelPoint(cfg system.ShardedConfig) (time.Duration, float64, uint64, string, error) {
	runtime.GC()
	rig, err := system.NewShardedRig(cfg)
	if err != nil {
		return 0, 0, 0, "", err
	}
	sess, err := rig.NewSession("", 100*sim.Second)
	if err != nil {
		return 0, 0, 0, "", err
	}
	defer sess.Close()
	start := time.Now()
	sess.Start()
	for {
		done, err := sess.Step()
		if err != nil {
			return 0, 0, 0, "", fmt.Errorf("experiments: sharded run ch=%d w=%d: %w", cfg.Channels, cfg.Workers, err)
		}
		if done {
			break
		}
	}
	host := time.Since(start)
	var buf bytes.Buffer
	if err := rig.Reg.DumpJSON(&buf); err != nil {
		return 0, 0, 0, "", err
	}
	return host, rig.AggregateBandwidth() / 1e9, sess.Steps(), buf.String(), nil
}

// RunParallelSpeedup measures the sharded rig at every channel count in
// channelCounts, serial (workers=1) against each entry of workerCounts, and
// verifies the parallel statistics dumps byte-match the serial ones. The
// saturating case covers every channel count; the spaced case (where the
// adaptive horizon matters) runs at the first channel count only.
// adaptiveQuanta <= 1 keeps the fixed quantum. Rows that ask for more
// workers than the host's hardware parallelism are stamped Undersubscribed —
// their speedups measure goroutine overhead, not scaling.
func RunParallelSpeedup(requests uint64, channelCounts, workerCounts []int, adaptiveQuanta int) (*ParallelResult, error) {
	if adaptiveQuanta < 1 {
		adaptiveQuanta = 1
	}
	res := &ParallelResult{
		HostCPUs:       runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Requests:       requests,
		AdaptiveQuanta: adaptiveQuanta,
	}
	hw := hardwareParallelism()
	cases := []struct {
		name     string
		spaced   bool
		channels []int
	}{
		{name: "saturating", spaced: false, channels: channelCounts},
		{name: "spaced", spaced: true, channels: channelCounts[:1]},
	}
	for _, c := range cases {
		for _, ch := range c.channels {
			serialHost, gbs, barriers, serialDump, err := runParallelPoint(
				parallelWorkload(ch, 1, adaptiveQuanta, requests, c.spaced))
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ParallelRow{
				Case: c.name, Channels: ch, Workers: 1, Host: serialHost,
				AggregateGBs: gbs, Speedup: 1, Deterministic: true, Barriers: barriers,
			})
			for _, w := range workerCounts {
				if w <= 1 {
					continue
				}
				host, gbs, barriers, dump, err := runParallelPoint(
					parallelWorkload(ch, w, adaptiveQuanta, requests, c.spaced))
				if err != nil {
					return nil, err
				}
				under := w > hw
				if under {
					res.Undersubscribed = true
				}
				res.Rows = append(res.Rows, ParallelRow{
					Case: c.name, Channels: ch, Workers: w, Host: host,
					AggregateGBs:    gbs,
					Speedup:         float64(serialHost) / float64(host),
					Deterministic:   dump == serialDump,
					Barriers:        barriers,
					Undersubscribed: under,
				})
			}
		}
	}
	return res, nil
}
