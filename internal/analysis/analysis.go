// Package analysis is a small, stdlib-only static-analysis framework for the
// simulator core, in the spirit of golang.org/x/tools/go/analysis but with no
// external dependency (the module's go.mod has no require block, and keeping
// it that way is deliberate). The paper's headline claim — an event-based
// controller model fast and trustworthy enough to replace cycle-accurate
// simulation — only holds while the reproduction stays deterministic:
// bit-identical sharded runs and byte-identical checkpoint resume silently
// break the moment someone ranges over a map into an output path, reads wall
// clock inside a sim path, or adds a struct field without wiring it through
// Save/Restore. Those invariants are cheap to enforce mechanically at go-vet
// speed, the same way gem5 gates its event-queue discipline with lint tooling
// rather than re-running regressions after the fact.
//
// An Analyzer inspects one type-checked package at a time and reports
// findings through its Pass. The runner applies per-package configuration
// (see Config) and //lint:allow suppression comments (see suppress.go), and
// returns findings sorted by position. The driver lives in cmd/simlint.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named check. Package-local analyzers set Run and see one
// type-checked package at a time; whole-program analyzers set RunProgram and
// see every loaded package through a shared Program index (call graph,
// directives, cross-package declarations). Exactly one of the two must be
// set.
type Analyzer struct {
	// Name identifies the analyzer in findings, configuration, and
	// //lint:allow directives. Lowercase, no spaces.
	Name string
	// Doc is a one-line description shown by `simlint -list`.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(*Pass)
	// RunProgram inspects the whole loaded program at once. Findings are
	// attributed to the package owning the reported position, where the
	// per-package policy and //lint:allow suppression apply as usual.
	RunProgram func(*ProgramPass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported problem.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding as "file:line: [analyzer] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzers returns the registered analyzer set, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Detmap, Simtime, Ckptfields, Eventpool,
		Tickunits, Hotalloc, Shardiso, Fpcover, Probeonce,
	}
}

// Run applies every analyzer to every package (subject to cfg; nil means "all
// analyzers everywhere"), filters suppressed findings, and returns the
// remainder sorted by (file, line, analyzer, message). Suppression directives
// that are themselves malformed — and well-formed directives that no longer
// suppress anything — surface as findings from the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Finding {
	findings, _ := run(pkgs, analyzers, cfg)
	return findings
}

// RunWithTimings is Run plus per-analyzer wall-clock, for `simlint -timing`.
// (The analysis framework is host tooling, not sim core: measuring wall time
// here is deliberate and outside the simtime policy's scope.)
func RunWithTimings(pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Finding, map[string]time.Duration) {
	return run(pkgs, analyzers, cfg)
}

func run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Finding, map[string]time.Duration) {
	known := make(map[string]bool, len(analyzers)+1)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// "lint" is the pseudo-analyzer for directive hygiene findings; making it
	// known lets `//lint:allow lint <reason>` keep a deliberately dormant
	// directive (e.g. one that only fires on another GOARCH).
	known["lint"] = true
	timings := map[string]time.Duration{}

	// Whole-program analyzers run once; their findings are bucketed into the
	// owning package so policy scoping and suppression apply identically to
	// both analyzer kinds.
	progFindings := map[*Package][]Finding{}
	var programAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			programAnalyzers = append(programAnalyzers, a)
		}
	}
	if len(programAnalyzers) > 0 && len(pkgs) > 0 {
		prog := BuildProgram(pkgs)
		for _, a := range programAnalyzers {
			start := time.Now()
			var raw []Finding
			a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, findings: &raw})
			timings[a.Name] += time.Since(start)
			for _, f := range raw {
				owner := prog.fileOwner[f.Pos.Filename]
				if owner == nil || (cfg != nil && !cfg.Enabled(a.Name, owner.Path)) {
					continue
				}
				progFindings[owner] = append(progFindings[owner], f)
			}
		}
	}

	var out []Finding
	for _, pkg := range pkgs {
		raw := progFindings[pkg]
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if cfg != nil && !cfg.Enabled(a.Name, pkg.Path) {
				continue
			}
			start := time.Now()
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, findings: &raw}
			a.Run(pass)
			timings[a.Name] += time.Since(start)
		}
		enabled := func(analyzer string) bool {
			if cfg == nil {
				return true
			}
			return cfg.Enabled(analyzer, pkg.Path)
		}
		out = append(out, applySuppressions(pkg, raw, known, enabled)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, timings
}

// relName renders filename relative to baseDir when it lies under it (so
// golden files and CI output are machine-independent), with forward slashes.
func relName(filename, baseDir string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filename
}

// Format renders findings one per line as "file:line: [analyzer] message".
func Format(findings []Finding, baseDir string) string {
	var sb strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&sb, "%s:%d: [%s] %s\n", relName(f.Pos.Filename, baseDir), f.Pos.Line, f.Analyzer, f.Message)
	}
	return sb.String()
}

// FormatJSON renders findings as JSON Lines: one object per finding with
// fields file, line, analyzer, message. One object per output line (rather
// than a single array) keeps the stream greppable, diffable against a golden
// line-by-line, and matchable by the GitHub Actions problem matcher, whose
// regexes anchor per log line.
func FormatJSON(findings []Finding, baseDir string) string {
	type rec struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.SetEscapeHTML(false) // messages quote Go source; keep < and > readable
	for _, f := range findings {
		// Encode cannot fail on this shape; it appends a trailing newline.
		_ = enc.Encode(rec{
			File:     relName(f.Pos.Filename, baseDir),
			Line:     f.Pos.Line,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	return sb.String()
}

// WithStack walks the AST under root, giving the callback the path of nodes
// from root to n (inclusive). Returning false skips n's children.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// funcFor resolves a call expression to the *types.Func it invokes, or nil
// (builtins, function-typed variables, type conversions).
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// pkgFunc reports whether f is the package-level function path.name (methods
// never match: they have a receiver).
func pkgFunc(f *types.Func, path, name string) bool {
	if f == nil || f.Pkg() == nil || f.Name() != name || f.Pkg().Path() != path {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
