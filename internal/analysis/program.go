package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Whole-program view. PR 4's analyzers were AST-local: each judged one
// package in isolation, which is enough for "don't range over a map into a
// writer" but not for the invariants the multi-standard backend refactor
// leans on. Whether a //hot:path function allocates depends on what its callees
// do; whether a fingerprint covers a config knob depends on code in a
// different package (the cmd front-ends build the fingerprint, internal/core
// declares the knob); whether shard-isolated code can reach the barrier
// section is a reachability question over the entire module. Program indexes
// every loaded package once — declarations, a reference graph, directive
// annotations — so those analyzers share one traversal instead of each
// re-walking the world.

// FuncInfo pairs a declared function with the package that declares it.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package

	refs []*types.Func // lazily computed program-local references
}

// Program is the whole-module index handed to program-level analyzers.
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet
	// Funcs maps every declared function or method with a body to its
	// declaration, across all loaded packages.
	Funcs map[*types.Func]*FuncInfo

	fileOwner map[string]*Package
	// byKey maps a stable (package path, receiver, name) key to the
	// source-checked declaration, to bridge the object-identity split
	// described at canon.
	byKey map[string]*types.Func
}

// BuildProgram indexes the loaded packages. The same Fset must underlie all
// of them (Load guarantees this for one call; callers merging Loads must not).
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:      pkgs,
		Funcs:     map[*types.Func]*FuncInfo{},
		fileOwner: map[string]*Package{},
		byKey:     map[string]*types.Func{},
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			p.fileOwner[pkg.Fset.Position(file.Pos()).Filename] = pkg
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.Funcs[fn] = &FuncInfo{Decl: fd, Pkg: pkg}
					if k := funcKey(fn); k != "" {
						p.byKey[k] = fn
					}
				}
			}
		}
	}
	return p
}

// funcKey renders a stable cross-package identity for a declared function or
// method: "pkgpath.Recv.Name". Pointer receivers are normalised to the base
// type (a name can only be bound once per base type, so this is unambiguous).
func funcKey(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	key := f.Pkg().Path() + "."
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		key += named.Obj().Name() + "."
	}
	return key + f.Name()
}

// canon maps a *types.Func to the source-checked declaration Program indexed.
// Object identity splits across packages: internal/core type-checked from
// source yields one *types.Func per method, but a package that imports it
// resolves the same method through gc export data to a different object.
// Without canonicalisation every cross-package edge in the reference graph —
// a cmd front-end calling core.NewController, a callback naming a barrier
// method — would silently fail the Funcs lookup and vanish. canon returns f
// unchanged when it has no declared counterpart (stdlib, interface methods).
func (p *Program) canon(f *types.Func) *types.Func {
	if f == nil {
		return nil
	}
	if _, ok := p.Funcs[f]; ok {
		return f
	}
	if c, ok := p.byKey[funcKey(f)]; ok {
		return c
	}
	return f
}

// Owner returns the package owning the file at pos, or nil.
func (p *Program) Owner(pos token.Pos) *Package {
	return p.fileOwner[p.Fset.Position(pos).Filename]
}

// FuncAt resolves the *types.Func for a declaration in pkg.
func (p *Program) FuncAt(pkg *Package, fd *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return fn
}

// Refs returns every program-local function referenced (called, taken as a
// value, assigned to a field) inside fn's body, including inside function
// literals it declares. Treating a reference as a potential call makes
// reachability conservative in the presence of function-valued fields — the
// link's deliver hook, the rig's OnQuantum — which is the right direction
// for an isolation checker: a function whose address escapes into a callback
// slot may run wherever that slot is invoked.
func (p *Program) Refs(fn *types.Func) []*types.Func {
	fi := p.Funcs[fn]
	if fi == nil {
		return nil
	}
	if fi.refs == nil {
		fi.refs = p.refsIn(fi.Pkg, fi.Decl.Body)
		if len(fi.refs) == 0 {
			fi.refs = []*types.Func{} // distinguish "computed, empty" from "not yet"
		}
	}
	return fi.refs
}

// refsIn collects program-local functions referenced under root.
func (p *Program) refsIn(pkg *Package, root ast.Node) []*types.Func {
	seen := map[*types.Func]bool{}
	var out []*types.Func
	ast.Inspect(root, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		f, ok := pkg.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		f = p.canon(f) // cross-package uses resolve to import-loaded objects
		if seen[f] {
			return true
		}
		if _, local := p.Funcs[f]; local {
			seen[f] = true
			out = append(out, f)
		}
		return true
	})
	// Deterministic order for deterministic finding order downstream.
	sort.Slice(out, func(i, j int) bool {
		return p.Fset.Position(out[i].Pos()).Offset < p.Fset.Position(out[j].Pos()).Offset
	})
	return out
}

// ReachableFrom walks the reference graph from the given roots and returns,
// for every function reached, the edge it was first reached through (for
// path reconstruction in messages). Roots map to a nil predecessor.
func (p *Program) ReachableFrom(roots []*types.Func) map[*types.Func]*types.Func {
	pred := map[*types.Func]*types.Func{}
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if _, ok := pred[r]; !ok {
			pred[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range p.Refs(fn) {
			if _, ok := pred[callee]; ok {
				continue
			}
			pred[callee] = fn
			queue = append(queue, callee)
		}
	}
	return pred
}

// PathTo reconstructs the root→fn chain from a ReachableFrom predecessor map
// as "a → b → c" using package-qualified names.
func (p *Program) PathTo(pred map[*types.Func]*types.Func, fn *types.Func) string {
	var chain []string
	for f := fn; f != nil; f = pred[f] {
		chain = append(chain, FuncDisplayName(f))
		if pred[f] == nil {
			break
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " -> ")
}

// FuncDisplayName renders a function for messages: "pkg.Name" or
// "pkg.(*Recv).Name".
func FuncDisplayName(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			name = "(" + star + named.Obj().Name() + ")." + name
		}
	}
	if f.Pkg() != nil {
		if parts := strings.Split(f.Pkg().Path(), "/"); len(parts) > 0 {
			name = parts[len(parts)-1] + "." + name
		}
	}
	return name
}

// ProgramPass is the whole-program analogue of Pass.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	findings *[]Finding
}

// Reportf records a finding at pos; the runner attributes it to the owning
// package for suppression and policy scoping.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directives.
//
// The annotation vocabulary (see DESIGN.md §15):
//
//	//hot:path                — function must stay allocation-free (hotalloc)
//	//shard:barrier           — function may only run in the single-threaded
//	                            barrier section (shardiso)
//	//fp:check                — struct's behavior-shaping fields must be
//	                            fingerprinted (fpcover)
//	//fp:skip <reason>        — field deliberately outside the fingerprint
//	//ckpt:skip <reason>      — field deliberately outside Save/Restore
//	//lint:allow <a> <reason> — suppress one finding (suppress.go)
//
// A directive is its own comment line: "//hot:path", optionally followed by
// a space and a note ("//hot:path FR-FCFS scan"). "//hot:pathological" does
// not match. Every directive follows gofmt's //name:value shape on purpose:
// the doc-comment formatter (Go ≥1.19) inserts a space into any other
// comment form ("//hot" becomes "// hot"), silently detaching it.

// commentDirective reports whether any line of the comment groups is the
// given directive, returning its trailing note.
func commentDirective(name string, groups ...*ast.CommentGroup) (note string, ok bool) {
	prefix := "//" + name
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, prefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// FuncDirective reports whether fd's doc comment carries the directive.
func FuncDirective(fd *ast.FuncDecl, name string) (string, bool) {
	return commentDirective(name, fd.Doc)
}

// DirectiveFuncs returns every declared function annotated with the
// directive, in deterministic (file, offset) order.
func (p *Program) DirectiveFuncs(name string) []*types.Func {
	var out []*types.Func
	for fn, fi := range p.Funcs {
		if _, ok := FuncDirective(fi.Decl, name); ok {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := p.Fset.Position(out[i].Pos()), p.Fset.Position(out[j].Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return out
}

// typeSpecDirective reports whether a type declaration carries the directive,
// checking both the TypeSpec's own doc and the enclosing GenDecl's.
func typeSpecDirective(gd *ast.GenDecl, ts *ast.TypeSpec, name string) bool {
	if _, ok := commentDirective(name, ts.Doc, ts.Comment); ok {
		return true
	}
	if len(gd.Specs) == 1 {
		_, ok := commentDirective(name, gd.Doc)
		return ok
	}
	return false
}
