// Package tickunits is a fixture for the tickunits analyzer: nanosecond
// counts (Ns-suffixed by convention) must be scaled by sim.Nanosecond when
// they cross into kernel ticks, and sim.Tick values must not carry ns names.
package tickunits

import "repro/internal/sim"

// BadConvert reinterprets a nanosecond count as picosecond ticks.
func BadConvert(idleNs int64) sim.Tick {
	return sim.Tick(idleNs)
}

// BadLiteralScale scales by a bare literal instead of the named unit.
func BadLiteralScale(refreshNs int64) sim.Tick {
	return sim.Tick(refreshNs * 1000)
}

// BadName declares a sim.Tick under a nanosecond-flavored name.
func BadName() sim.Tick {
	var windowNs sim.Tick = 5
	return windowNs
}

// GoodScaled crosses the boundary the documented way.
func GoodScaled(idleNs int64) sim.Tick {
	return sim.Tick(idleNs) * sim.Nanosecond
}

// GoodReversedAndDivided: the unit factor may sit anywhere in the same
// arithmetic expression, before or after division.
func GoodReversedAndDivided(quantumNs int64) sim.Tick {
	return sim.Nanosecond * sim.Tick(quantumNs) / 4
}

// GoodMicro: any of the sim unit constants satisfies the scale rule.
func GoodMicro(warmupUs int64) sim.Tick {
	return sim.Tick(warmupUs) * sim.Microsecond
}

// GoodPlainNs: arithmetic that stays in nanoseconds is fine.
func GoodPlainNs(aNs, bNs int64) int64 {
	return aNs + bNs
}
