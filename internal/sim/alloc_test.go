package sim

import "testing"

// The event hot path must not allocate in steady state: the calendar queue
// stores occurrences as values in reused bucket slices, the far heap reuses
// its backing array, and Call/CallIn draw one-shot events from the kernel
// free list. These tests gate that property — a regression here shows up as
// GC pressure in every sharded benchmark.

// TestScheduleSteadyStateZeroAlloc drives a named event through the
// schedule/fire cycle the controller hot path uses (Schedule, Reschedule,
// Deschedule and the cursor drain) and requires zero allocations per cycle
// once the queue's backing arrays are warm.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	k := NewKernel()
	fired := 0
	ev := NewEvent("hot", func() { fired++ })
	ev2 := NewEvent("churn", func() { fired++ })

	cycle := func() {
		k.Schedule(ev, k.Now()+3)
		k.Schedule(ev2, k.Now()+9)
		k.Reschedule(ev2, k.Now()+5) // leaves a tombstone behind
		k.RunUntil(k.Now() + 16)
	}
	// Warm up: grow bucket slices to their steady-state capacity.
	for i := 0; i < 64; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("steady-state schedule/fire cycle allocates %.2f objects, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("events never fired")
	}
}

// TestCallSteadyStateZeroAlloc covers the pooled one-shot path: a fired
// Call event returns to the kernel free list and the next Call reuses it,
// so retries/replays/deferred kicks allocate nothing. The callback is
// hoisted out of the loop because capturing closures allocate by their
// nature — the kernel's contribution must still be zero.
func TestCallSteadyStateZeroAlloc(t *testing.T) {
	k := NewKernel()
	fired := 0
	fn := func() { fired++ }

	cycle := func() {
		k.CallIn("oneshot", 2, fn)
		k.CallIn("oneshot", 4, fn)
		k.RunUntil(k.Now() + 8)
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("steady-state Call cycle allocates %.2f objects, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("pooled events never fired")
	}
}

// TestPeekNextMatchesRunOrder checks the adaptive-lookahead primitive: the
// peeked tick is exactly the tick the next RunUntil executes first, peeking
// does not disturb the schedule, and an empty kernel reports no event.
func TestPeekNextMatchesRunOrder(t *testing.T) {
	k := NewKernel()
	if _, ok := k.PeekNext(); ok {
		t.Fatal("empty kernel claims a pending event")
	}
	var order []Tick
	mk := func(name string, at Tick) {
		ev := NewEvent(name, func() { order = append(order, k.Now()) })
		k.Schedule(ev, at)
	}
	mk("far", 1_000_000) // beyond the bucket window: exercises the far heap
	mk("near", 7)
	mk("mid", 40)

	for _, want := range []Tick{7, 40, 1_000_000} {
		got, ok := k.PeekNext()
		if !ok || got != want {
			t.Fatalf("PeekNext = %v,%v want %v,true", got, ok, want)
		}
		// Peeking twice is idempotent.
		if again, ok := k.PeekNext(); !ok || again != got {
			t.Fatalf("second PeekNext = %v,%v, first = %v", again, ok, got)
		}
		k.RunUntil(got)
	}
	if len(order) != 3 || order[0] != 7 || order[1] != 40 || order[2] != 1_000_000 {
		t.Fatalf("execution order %v disturbed by peeking", order)
	}
	if _, ok := k.PeekNext(); ok {
		t.Fatal("drained kernel claims a pending event")
	}
}

// TestPeekNextSkipsTombstones: a descheduled event must not be reported as
// the next event, even though its queue entry is still physically present.
func TestPeekNextSkipsTombstones(t *testing.T) {
	k := NewKernel()
	dead := NewEvent("dead", func() {})
	live := NewEvent("live", func() {})
	k.Schedule(dead, 5)
	k.Schedule(live, 9)
	k.Deschedule(dead)
	if got, ok := k.PeekNext(); !ok || got != 9 {
		t.Fatalf("PeekNext = %v,%v want 9,true (tombstone not skipped)", got, ok)
	}
}
