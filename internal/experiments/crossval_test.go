package experiments

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cyclesim"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/trafficgen"
)

// Property: the two controller models, fed the same request stream, move
// exactly the same bytes and answer exactly the same number of requests —
// timing differs, functional behaviour must not.
func TestCrossModelConservationProperty(t *testing.T) {
	prop := func(seed int64, closedRaw bool) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := dram.DDR3_1333_8x8()
		mapping := dram.RoRaBaCoCh
		if closedRaw {
			mapping = dram.RoCoRaBaCh
		}
		type outcome struct {
			acts power.Activity
			lat  uint64
		}
		run := func(kind system.Kind, pattern trafficgen.Pattern) (outcome, bool) {
			rig, err := system.NewTrafficRig(system.RigConfig{
				Kind: kind, Spec: spec, Mapping: mapping, ClosedPage: closedRaw,
				Gen: trafficgen.Config{
					RequestBytes:   spec.Org.BurstBytes(),
					MaxOutstanding: 16,
					Count:          300,
				},
				Pattern: pattern,
			})
			if err != nil {
				return outcome{}, false
			}
			if !rig.Run(sim.Second) {
				return outcome{}, false
			}
			return outcome{acts: rig.Ctrl.PowerStats(), lat: rig.Gen.ReadLatency().Count()}, true
		}
		// Collision-free stream (unique addresses): the event model cannot
		// forward or merge, so the DRAM traffic must be byte-exact equal.
		readPct := 30 + rng.Intn(70)
		mk := func() trafficgen.Pattern {
			return &trafficgen.Linear{
				Start: 0, End: 300 * mem.Addr(spec.Org.BurstBytes()),
				Step: spec.Org.BurstBytes(), ReadPercent: readPct, Seed: seed,
			}
		}
		ev, ok := run(system.EventBased, mk())
		if !ok {
			return false
		}
		cy, ok := run(system.CycleBased, mk())
		if !ok {
			return false
		}
		if ev.acts.ReadBursts != cy.acts.ReadBursts {
			return false
		}
		if ev.acts.WriteBursts != cy.acts.WriteBursts {
			return false
		}
		if ev.lat != cy.lat {
			return false
		}
		// Colliding stream: forwarding/merging may reduce the event model's
		// DRAM traffic, but never increase it, and every request is still
		// answered.
		mkRand := func() trafficgen.Pattern {
			return &trafficgen.Random{
				Start: 0, End: 1 << 20, Align: spec.Org.BurstBytes(),
				ReadPercent: readPct, Seed: seed,
			}
		}
		ev2, ok := run(system.EventBased, mkRand())
		if !ok {
			return false
		}
		cy2, ok := run(system.CycleBased, mkRand())
		if !ok {
			return false
		}
		if ev2.acts.ReadBursts > cy2.acts.ReadBursts || ev2.acts.WriteBursts > cy2.acts.WriteBursts {
			return false
		}
		return ev2.lat == cy2.lat
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The cycle-based model's per-cycle integrated energy must agree with the
// offline Micron computation over its own activity counters — two
// independent implementations of the same power methodology.
func TestCycleEnergyMatchesOfflineMicron(t *testing.T) {
	spec := dram.DDR3_1333_8x8()
	k := sim.NewKernel()
	reg := stats.NewRegistry("t")
	cfg := cyclesim.DefaultConfig(spec)
	ctrl, err := cyclesim.NewController(k, cfg, reg, "mc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trafficgen.New(k, trafficgen.Config{
		RequestBytes:   spec.Org.BurstBytes(),
		MaxOutstanding: 16,
		Count:          3000,
	}, &trafficgen.Linear{Start: 0, End: 1 << 24, Step: spec.Org.BurstBytes(), ReadPercent: 67, Seed: 2},
		reg, "gen")
	if err != nil {
		t.Fatal(err)
	}
	mem.Connect(gen.Port(), ctrl.Port())
	gen.Start()
	for i := 0; i < 10000 && !(gen.Done() && ctrl.Quiescent()); i++ {
		k.RunUntil(k.Now() + sim.Microsecond)
	}
	if !gen.Done() {
		t.Fatal("did not complete")
	}

	integrated := ctrl.Energy().TotalPJ()
	act := ctrl.PowerStats()
	offlineW := power.Compute(spec, act).TotalMW() / 1000
	offlinePJ := offlineW * act.Elapsed.Seconds() * 1e12
	if integrated <= 0 || offlinePJ <= 0 {
		t.Fatalf("degenerate energies: integrated=%v offline=%v", integrated, offlinePJ)
	}
	ratio := integrated / offlinePJ
	if math.Abs(ratio-1) > 0.15 {
		t.Fatalf("integrated energy %.3g pJ vs offline %.3g pJ (ratio %.3f), want within 15%%",
			integrated, offlinePJ, ratio)
	}
	// The dominant components agree individually too.
	br := ctrl.Energy()
	off := power.Compute(spec, act)
	offBgPJ := off.BackgroundMW / 1000 * act.Elapsed.Seconds() * 1e12
	if offBgPJ > 0 {
		if r := br.BackgroundPJ / offBgPJ; math.Abs(r-1) > 0.2 {
			t.Fatalf("background energy ratio %.3f", r)
		}
	}
	offActPJ := off.ActPreMW / 1000 * act.Elapsed.Seconds() * 1e12
	if offActPJ > 0 {
		if r := br.ActPrePJ / offActPJ; math.Abs(r-1) > 0.1 {
			t.Fatalf("act/pre energy ratio %.3f", r)
		}
	}
}

// Determinism across the full rig: identical configurations give identical
// measured results run-to-run for both models.
func TestRigDeterminism(t *testing.T) {
	for _, kind := range []system.Kind{system.EventBased, system.CycleBased} {
		measure := func() (float64, float64) {
			spec := dram.DDR3_1333_8x8()
			rig, err := system.NewTrafficRig(system.RigConfig{
				Kind: kind, Spec: spec, Mapping: dram.RoRaBaCoCh,
				Gen: trafficgen.Config{
					RequestBytes:   spec.Org.BurstBytes(),
					MaxOutstanding: 24,
					Count:          1000,
				},
				Pattern: &trafficgen.Random{Start: 0, End: 1 << 24, Align: 64, ReadPercent: 60, Seed: 99},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rig.Run(sim.Second) {
				t.Fatal("did not complete")
			}
			return rig.Ctrl.BusUtilisation(), rig.Gen.ReadLatency().Mean()
		}
		u1, l1 := measure()
		u2, l2 := measure()
		if u1 != u2 || l1 != l2 {
			t.Fatalf("%s rig not deterministic: %v/%v vs %v/%v", kind, u1, l1, u2, l2)
		}
	}
}
