package stats

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSamplerFiresAtInterval(t *testing.T) {
	k := sim.NewKernel()
	var fired []sim.Tick
	s, err := NewSampler(k, 100*sim.Nanosecond, func(now sim.Tick) { fired = append(fired, now) })
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	k.RunUntil(550 * sim.Nanosecond)
	if len(fired) != 5 {
		t.Fatalf("fired %d times, want 5", len(fired))
	}
	for i, at := range fired {
		if at != sim.Tick(i+1)*100*sim.Nanosecond {
			t.Fatalf("sample %d at %s", i, at)
		}
	}
	s.Stop()
	k.RunUntil(sim.Microsecond)
	if len(fired) != 5 {
		t.Fatal("sampler fired after Stop")
	}
	// Restart works.
	s.Start()
	k.RunUntil(k.Now() + 250*sim.Nanosecond)
	if len(fired) != 7 {
		t.Fatalf("fired %d after restart, want 7", len(fired))
	}
}

func TestSamplerValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewSampler(k, 0, func(sim.Tick) {}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewSampler(k, 10, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
}

func TestSeriesAbsoluteAndDelta(t *testing.T) {
	k := sim.NewKernel()
	counter := 0.0
	// Something grows by 10 per 50 ns.
	grow, _ := NewSampler(k, 50*sim.Nanosecond, func(sim.Tick) { counter += 10 })
	grow.Start()

	abs, err := NewSeries(k, 100*sim.Nanosecond, func() float64 { return counter }, false)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := NewSeries(k, 100*sim.Nanosecond, func() float64 { return counter }, true)
	if err != nil {
		t.Fatal(err)
	}
	abs.Start()
	rate.Start()
	k.RunUntil(500 * sim.Nanosecond)

	absPts := abs.Points()
	if len(absPts) != 5 {
		t.Fatalf("abs points = %d", len(absPts))
	}
	// Absolute series grows; delta series is flat at 20 per interval.
	if absPts[4].Value <= absPts[0].Value {
		t.Fatal("absolute series not growing")
	}
	// The first sample races the coincident grow tick (same-tick event
	// order); steady state is 20 per interval.
	for i, p := range rate.Points()[1:] {
		if p.Value != 20 {
			t.Fatalf("delta point %d = %v, want 20", i+1, p.Value)
		}
	}
	if rate.Max() != 20 {
		t.Fatalf("max = %v", rate.Max())
	}
	var empty Series
	if empty.Mean() != 0 || empty.Max() != 0 {
		t.Fatal("empty series stats not zero")
	}
}

func TestPeriodicDump(t *testing.T) {
	k := sim.NewKernel()
	reg := NewRegistry("sys")
	sc := reg.NewScalar("count", "things")
	var sb strings.Builder
	d, err := NewPeriodicDump(k, reg, 100*sim.Nanosecond, &sb, true)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	bump, _ := NewSampler(k, 40*sim.Nanosecond, func(sim.Tick) { sc.Inc() })
	bump.Start()
	k.RunUntil(250 * sim.Nanosecond)
	out := sb.String()
	if strings.Count(out, "---------- stats @") != 2 {
		t.Fatalf("dump headers = %d, want 2\n%s", strings.Count(out, "----------"), out)
	}
	if !strings.Contains(out, "sys.count") {
		t.Fatal("stat missing from dump")
	}
	// resetEach: the scalar was cleared after each dump, so the current
	// value only reflects the samples since the second dump.
	if sc.Value() > 2 {
		t.Fatalf("reset-each failed: count = %v", sc.Value())
	}
}
