package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trafficgen"
	"repro/internal/xbar"
)

// This file measures the sharded (parallel per-channel) rig against its own
// serial schedule: identical topology, identical statistics (asserted, not
// assumed), wall-clock compared across worker counts. This is the headline
// claim of the parallel kernel work — determinism is free, speedup scales
// with channels on a multi-core host — and the numbers land in BENCH_2.json.

// ParallelRow is one (channels, workers) wall-clock measurement.
type ParallelRow struct {
	Channels int           `json:"channels"`
	Workers  int           `json:"workers"`
	Host     time.Duration `json:"hostNs"`
	// AggregateGBs is the summed channel bandwidth, as a sanity check that
	// every configuration simulated the same traffic.
	AggregateGBs float64 `json:"aggregateGBs"`
	// Speedup is serial host time over this row's host time, within the same
	// channel count (workers=1 rows therefore read 1.0).
	Speedup float64 `json:"speedup"`
	// Deterministic reports whether this row's full statistics dump was
	// byte-identical to the serial run's.
	Deterministic bool `json:"deterministic"`
}

// ParallelResult aggregates the sharded-rig scaling measurement.
type ParallelResult struct {
	HostCPUs   int           `json:"hostCPUs"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Requests   uint64        `json:"requestsPerGen"`
	Rows       []ParallelRow `json:"rows"`
}

// parallelWorkload builds the sharded bandwidth-sweep workload: one mixed
// linear/random generator pair per two channels (minimum two generators), so
// offered load grows with the channel count and every channel stays busy.
func parallelWorkload(channels, workers int, requests uint64) system.ShardedConfig {
	spec := dram.DDR3_1333_8x8()
	nGens := channels
	if nGens < 2 {
		nGens = 2
	}
	gens := make([]trafficgen.Config, nGens)
	patterns := make([]trafficgen.Pattern, nGens)
	for i := range gens {
		gens[i] = trafficgen.Config{
			RequestBytes:   spec.Org.BurstBytes(),
			MaxOutstanding: 32,
			Count:          requests,
			RequestorID:    i,
		}
		if i%2 == 0 {
			patterns[i] = &trafficgen.Linear{
				Start: 0, End: 1 << 26, Step: spec.Org.BurstBytes(),
				ReadPercent: 80, Seed: int64(11 + i),
			}
		} else {
			patterns[i] = &trafficgen.Random{
				Start: 0, End: 1 << 26, Align: spec.Org.BurstBytes(),
				ReadPercent: 60, Seed: int64(23 + i),
			}
		}
	}
	return system.ShardedConfig{
		Kind:     system.EventBased,
		Spec:     spec,
		Mapping:  dram.RoRaBaCoCh,
		Channels: channels,
		Xbar:     xbar.Config{Latency: 2 * sim.Nanosecond, QueueDepth: 64},
		Gens:     gens,
		Patterns: patterns,
		Workers:  workers,
	}
}

// runParallelPoint runs one sharded configuration to completion and returns
// host time, aggregate bandwidth and the statistics dump.
func runParallelPoint(channels, workers int, requests uint64) (time.Duration, float64, string, error) {
	runtime.GC()
	rig, err := system.NewShardedRig(parallelWorkload(channels, workers, requests))
	if err != nil {
		return 0, 0, "", err
	}
	start := time.Now()
	if !rig.Run(100 * sim.Second) {
		return 0, 0, "", fmt.Errorf("experiments: sharded run ch=%d w=%d did not complete", channels, workers)
	}
	host := time.Since(start)
	var buf bytes.Buffer
	if err := rig.Reg.DumpJSON(&buf); err != nil {
		return 0, 0, "", err
	}
	return host, rig.AggregateBandwidth() / 1e9, buf.String(), nil
}

// RunParallelSpeedup measures the sharded rig at every channel count in
// channelCounts, serial (workers=1) against each entry of workerCounts, and
// verifies the parallel statistics dumps byte-match the serial ones. On a
// single-hardware-thread host expect speedups near (or below) 1.0 — the
// point of recording HostCPUs alongside the rows.
func RunParallelSpeedup(requests uint64, channelCounts, workerCounts []int) (*ParallelResult, error) {
	res := &ParallelResult{
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Requests:   requests,
	}
	for _, ch := range channelCounts {
		serialHost, gbs, serialDump, err := runParallelPoint(ch, 1, requests)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ParallelRow{
			Channels: ch, Workers: 1, Host: serialHost,
			AggregateGBs: gbs, Speedup: 1, Deterministic: true,
		})
		for _, w := range workerCounts {
			if w <= 1 {
				continue
			}
			host, gbs, dump, err := runParallelPoint(ch, w, requests)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ParallelRow{
				Channels: ch, Workers: w, Host: host,
				AggregateGBs:  gbs,
				Speedup:       float64(serialHost) / float64(host),
				Deterministic: dump == serialDump,
			})
		}
	}
	return res, nil
}
