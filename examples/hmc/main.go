// HMC: the paper's §II-F claim made concrete — "a model of HMC is only a
// matter of combining the crossbar model with 16 instances of our controller
// model". This example builds a 16-vault Hybrid-Memory-Cube-like stack
// behind an interleaving crossbar, drives it with four mixed-traffic
// generators, and reports per-vault utilisation and the aggregate bandwidth.
package main

import (
	"fmt"
	"log"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trafficgen"
	"repro/internal/xbar"
)

func main() {
	const (
		vaults     = 16
		generators = 4
		requests   = 20000
	)
	spec := dram.HMCVault()

	var gens []trafficgen.Config
	var patterns []trafficgen.Pattern
	for i := 0; i < generators; i++ {
		gens = append(gens, trafficgen.Config{
			RequestBytes:   64,
			MaxOutstanding: 32,
			Count:          requests / generators,
			RequestorID:    i,
		})
		patterns = append(patterns, &trafficgen.Random{
			Start: 0, End: 1 << 30, Align: 64,
			ReadPercent: 70, Seed: int64(i) + 1,
		})
	}

	rig, err := system.NewMultiChannelRig(system.MultiChannelConfig{
		Kind:     system.EventBased,
		Spec:     spec,
		Mapping:  dram.RoCoRaBaCh, // burst-granular interleave across vaults
		Channels: vaults,
		Xbar:     xbar.Config{Latency: 4 * sim.Nanosecond, QueueDepth: 64},
		Gens:     gens,
		Patterns: patterns,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !rig.Run(sim.Second) {
		log.Fatal("hmc: run did not complete")
	}

	fmt.Printf("16-vault HMC-like stack, %d generators, %d requests total\n\n", generators, requests)
	fmt.Printf("%-8s %10s %10s %10s\n", "vault", "util", "GB/s", "row hits")
	for i, c := range rig.Ctrls {
		fmt.Printf("vault%-3d %9.1f%% %10.2f %9.1f%%\n",
			i, c.BusUtilisation()*100, c.Bandwidth()/1e9, c.RowHitRate()*100)
	}
	fmt.Printf("\naggregate bandwidth: %.2f GB/s over %s simulated (%d kernel events)\n",
		rig.AggregateBandwidth()/1e9, rig.K.Now(), rig.K.EventsExecuted())
	fmt.Println("even with 16 channels the event-based model executes only when something changes (§II-F)")
}
