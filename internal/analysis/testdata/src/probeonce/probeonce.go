// Package probeonce is a fixture for the probeonce analyzer: every obs
// emission must sit behind the nil-hub fast path, and the payload must be
// constructed inside the guard.
package probeonce

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

type ev struct {
	at sim.Tick
}

func (ev) ObsSrc() string      { return "fixture" }
func (e ev) ObsTime() sim.Tick { return e.at }

type comp struct {
	hub *obs.Hub
}

// BadUnguarded emits with no nil check at all.
func (c *comp) BadUnguarded(now sim.Tick) {
	c.hub.Emit(ev{at: now})
}

// BadPayloadOutside guards the branch but builds the payload above it,
// charging disabled runs the construction cost.
func (c *comp) BadPayloadOutside(now sim.Tick) {
	payload := ev{at: now}
	if c.hub != nil {
		c.hub.Emit(payload)
	}
}

// GoodGuarded is the canonical emission site.
func (c *comp) GoodGuarded(now sim.Tick) {
	if c.hub != nil {
		c.hub.Emit(ev{at: now})
	}
}

// GoodCompound: the nil check may be one leg of a compound condition.
func (c *comp) GoodCompound(now sim.Tick, interesting bool) {
	if c.hub != nil && interesting {
		c.hub.Emit(ev{at: now})
	}
}

// GoodEarlyReturn: the probe-only-helper style; everything after the early
// exit runs only with a hub attached, payload construction included.
func (c *comp) GoodEarlyReturn(now sim.Tick) {
	if c.hub == nil {
		return
	}
	payload := ev{at: now}
	c.hub.Emit(payload)
}
