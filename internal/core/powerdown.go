package core

import "repro/internal/sim"

// Power-down support (extension): the paper lists low-power states as
// future work ("Currently, we do not model the low-power states and
// associated timing constraints", §II-G). This extension adds the simplest
// useful form: after the controller has been completely idle for
// Config.PowerDownIdle, the channel enters power-down; the first access
// afterwards pays the tXP exit latency, and the time spent powered down is
// reported to the power model, which bills it at IDD2P instead of
// IDD2N/IDD3N. Refresh keeps running (CKE-low power-down still refreshes).

// schedulePowerDownCheck arms the idle timer when the controller just went
// quiescent.
func (c *Controller) schedulePowerDownCheck() {
	if c.cfg.PowerDownIdle <= 0 || c.poweredDown {
		return
	}
	if !c.Quiescent() {
		return
	}
	c.k.Reschedule(c.powerDownEvent, c.k.Now()+c.cfg.PowerDownIdle)
}

// processPowerDown fires after PowerDownIdle of scheduled idleness; it
// enters power-down if the controller is still quiescent.
func (c *Controller) processPowerDown() {
	if !c.Quiescent() || c.poweredDown {
		return
	}
	c.poweredDown = true
	c.powerDownSince = c.k.Now()
	c.st.powerDowns.Inc()
}

// exitPowerDown wakes the channel on a new request: every bank pays the tXP
// exit latency before its next command.
func (c *Controller) exitPowerDown() {
	if c.cfg.PowerDownIdle <= 0 {
		return
	}
	if c.powerDownEvent.Scheduled() {
		c.k.Deschedule(c.powerDownEvent)
	}
	if !c.poweredDown {
		return
	}
	now := c.k.Now()
	c.poweredDown = false
	c.powerDownTime += now - c.powerDownSince
	wake := now + c.cfg.Spec.Timing.TXP
	for _, rk := range c.ranks {
		for i := 0; i < rk.numBanks(); i++ {
			rk.actAllowedAt[i] = maxTick(rk.actAllowedAt[i], wake)
			rk.colAllowedAt[i] = maxTick(rk.colAllowedAt[i], wake)
			rk.preAllowedAt[i] = maxTick(rk.preAllowedAt[i], wake)
		}
	}
}

// PowerDownTime returns the accumulated time spent powered down, closing
// the current interval at now.
func (c *Controller) PowerDownTime() sim.Tick {
	t := c.powerDownTime
	if c.poweredDown {
		t += c.k.Now() - c.powerDownSince
	}
	return t
}
