package mem

import (
	"fmt"

	"repro/internal/sim"
)

// The port protocol is gem5's timing protocol:
//
//   - a requestor sends a request with RequestPort.SendTimingReq; the
//     responder may refuse (return false), in which case the requestor MUST
//     stop sending and wait for RecvReqRetry;
//   - a responder sends a response with ResponsePort.SendTimingResp; the
//     requestor may refuse, in which case the responder waits for
//     RecvRespRetry.
//
// This two-sided retry handshake is what gives the system real blocking and
// back pressure: a full controller queue stalls the crossbar, which stalls
// the cache, which stalls the core.

// stamp returns the diagnostic tick for a port's kernel; ports constructed
// without a kernel (nil) stamp zero rather than crashing inside a panic.
func stamp(k *sim.Kernel) sim.Tick {
	if k == nil {
		return 0
	}
	return k.Now()
}

// Requestor is the owner of a RequestPort: it accepts responses and retry
// notifications.
type Requestor interface {
	// RecvTimingResp delivers a response; returning false asks the sender to
	// retry later.
	RecvTimingResp(pkt *Packet) bool
	// RecvReqRetry tells the requestor a previously refused request may now
	// be resent.
	RecvReqRetry()
}

// Responder is the owner of a ResponsePort: it accepts requests and retry
// notifications.
type Responder interface {
	// RecvTimingReq delivers a request; returning false asks the sender to
	// retry later.
	RecvTimingReq(pkt *Packet) bool
	// RecvRespRetry tells the responder a previously refused response may
	// now be resent.
	RecvRespRetry()
}

// RequestPort is the requestor-side endpoint of a point-to-point link.
type RequestPort struct {
	name  string
	owner Requestor
	peer  *ResponsePort
	k     *sim.Kernel
}

// NewRequestPort returns an unconnected request port owned by owner. The
// kernel is the one owning the port's side of the simulation; it scopes the
// tick stamps in protocol-violation diagnostics, so multi-kernel (sharded)
// simulations report the right shard's time.
func NewRequestPort(name string, owner Requestor, k *sim.Kernel) *RequestPort {
	return &RequestPort{name: name, owner: owner, k: k}
}

// Name returns the diagnostic port name.
func (p *RequestPort) Name() string { return p.name }

// Connected reports whether the port has a peer.
func (p *RequestPort) Connected() bool { return p.peer != nil }

// Peer returns the connected response port (nil if unconnected).
func (p *RequestPort) Peer() *ResponsePort { return p.peer }

// SendTimingReq forwards a request to the peer responder. A false return
// means the responder is busy; the caller must wait for RecvReqRetry.
func (p *RequestPort) SendTimingReq(pkt *Packet) bool {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: port %q not connected at %s", p.name, stamp(p.k)))
	}
	if !pkt.Cmd.IsRequest() {
		panic(fmt.Sprintf("mem: SendTimingReq of %s on port %q at %s", pkt.Cmd, p.name, stamp(p.k)))
	}
	return p.peer.owner.RecvTimingReq(pkt)
}

// SendRespRetry tells the peer responder that the requestor can now accept
// the response it previously refused.
func (p *RequestPort) SendRespRetry() {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: port %q not connected at %s", p.name, stamp(p.k)))
	}
	p.peer.owner.RecvRespRetry()
}

// ResponsePort is the responder-side endpoint of a point-to-point link.
type ResponsePort struct {
	name  string
	owner Responder
	peer  *RequestPort
	k     *sim.Kernel
}

// NewResponsePort returns an unconnected response port owned by owner. The
// kernel scopes diagnostic tick stamps exactly as for NewRequestPort.
func NewResponsePort(name string, owner Responder, k *sim.Kernel) *ResponsePort {
	return &ResponsePort{name: name, owner: owner, k: k}
}

// Name returns the diagnostic port name.
func (p *ResponsePort) Name() string { return p.name }

// Connected reports whether the port has a peer.
func (p *ResponsePort) Connected() bool { return p.peer != nil }

// Peer returns the connected request port (nil if unconnected).
func (p *ResponsePort) Peer() *RequestPort { return p.peer }

// SendTimingResp forwards a response to the peer requestor. A false return
// means the requestor is busy; the caller must wait for RecvRespRetry.
func (p *ResponsePort) SendTimingResp(pkt *Packet) bool {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: port %q not connected at %s", p.name, stamp(p.k)))
	}
	if !pkt.Cmd.IsResponse() {
		panic(fmt.Sprintf("mem: SendTimingResp of %s on port %q at %s", pkt.Cmd, p.name, stamp(p.k)))
	}
	return p.peer.owner.RecvTimingResp(pkt)
}

// SendReqRetry tells the peer requestor that the responder can now accept
// the request it previously refused.
func (p *ResponsePort) SendReqRetry() {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: port %q not connected at %s", p.name, stamp(p.k)))
	}
	p.peer.owner.RecvReqRetry()
}

// Connect binds a request port and a response port into a link. Both must be
// unconnected.
func Connect(req *RequestPort, resp *ResponsePort) {
	if req.peer != nil || resp.peer != nil {
		panic(fmt.Sprintf("mem: Connect(%q, %q): port already connected", req.name, resp.name))
	}
	req.peer = resp
	resp.peer = req
}
