// Package fpcover is a fixture for the fpcover analyzer: every named field
// of an //fp:check struct must be fingerprint-covered (mentioned directly,
// fed by a fingerprinted name, or statically fixed) or carry //fp:skip.
package fpcover

// Config is the fixture's knob set.
//
//fp:check
type Config struct {
	// RowPolicy is covered: "rowpolicy" appears in the fingerprint string.
	RowPolicy string
	// BurstLength is covered by assignment flow: its value comes from
	// burstBeats, which the fingerprint mentions.
	BurstLength int
	// Workers is deliberately outside the fingerprint.
	Workers int //fp:skip sharding must not change results, so identity must not depend on it
	// DebugName has a skip directive with no reason: a finding.
	DebugName string //fp:skip
	// QueueDepth is assigned from an unfingerprinted source: a finding.
	QueueDepth int
	// Fixed is covered: its only assignment is a compile-time constant.
	Fixed bool
	// Retry is covered: its only assignment is a composite literal built
	// purely from constants, which is as statically fixed as a scalar.
	Retry RetryPolicy
	// Depth is a finding: its value arrives through a qualifier chain
	// (flags.tuning.depth) whose leaf is unfingerprinted — the mentioned
	// sibling "tuning" must not cover it.
	Depth int
	// Phantom is never assigned anywhere the analyzer can see: a finding.
	Phantom int
}

// RetryPolicy is a struct-valued knob.
type RetryPolicy struct {
	Limit   int
	Backoff int
}

// flagSet mimics a CLI flag struct: tuning.beats feeds the fingerprint,
// tuning.depth does not.
type flagSet struct {
	tuning struct {
		beats int
		depth int
	}
}

var burstBeats = 8

// fingerprint is picked up by name, and itoa joins the mention closure as
// its transitive callee. "tuning" enters the mention set (string word and
// qualifier of f.tuning.beats) — Depth below checks that a qualifier match
// alone does not count as coverage.
func fingerprint(c *Config, f *flagSet) string {
	return "rowpolicy=" + c.RowPolicy + ",beats=" + itoa(burstBeats) +
		",tuning.beats=" + itoa(f.tuning.beats)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func build(f *flagSet) *Config {
	c := &Config{
		Fixed: true,
		Retry: RetryPolicy{Limit: 4, Backoff: 2},
	}
	c.BurstLength = burstBeats * 2
	c.QueueDepth = depthDefault()
	c.Depth = f.tuning.depth
	return c
}

func depthDefault() int { return 32 }

var _ = build
var _ = fingerprint
