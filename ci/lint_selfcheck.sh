#!/usr/bin/env bash
# Lint gate + analyzer self-check.
#
# Part 1: the repository itself must be clean under the default simlint
# policy (exit 0, no output).
#
# Part 2: each analyzer must still find exactly what its golden file says it
# finds in the fixture packages under internal/analysis/testdata/src. This
# runs the driver end-to-end (not just the unit tests), so a broken driver
# that silently reports nothing fails CI instead of passing it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== simlint: repository must be clean under the default policy =="
go run ./cmd/simlint ./...
echo "clean"

fail=0
for fixture in detmap simtime ckptfields eventpool suppress; do
    echo "== simlint self-check: $fixture =="
    golden="internal/analysis/testdata/golden/$fixture.golden"
    set +e
    got=$(go run ./cmd/simlint -all "./internal/analysis/testdata/src/$fixture")
    status=$?
    set -e
    if [ "$status" -ne 1 ]; then
        echo "FAIL: simlint exited $status on fixture $fixture (expected 1: findings present)"
        fail=1
        continue
    fi
    if ! diff -u "$golden" <(printf '%s\n' "$got"); then
        echo "FAIL: fixture $fixture findings differ from $golden"
        fail=1
    else
        echo "ok ($(wc -l < "$golden") findings)"
    fi
done
exit "$fail"
