// Quickstart: the smallest complete simulation — one traffic generator
// driving one event-based DDR3 controller, with statistics dumped at the
// end. Start here to see the public API shape: build a kernel, build
// components against it, connect ports, run, read statistics.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trafficgen"
)

func main() {
	// Every simulation shares one event kernel; time is in picoseconds.
	kernel := sim.NewKernel()
	registry := stats.NewRegistry("quickstart")

	// The memory: a DDR3-1600 x64 channel (the paper's Table IV part) under
	// the paper's Table III controller configuration. Presets come from the
	// registry — dram.ByName for an exact part, dram.ByStandard("ddr5") for
	// a family's representative — and any dram.Spec is a dram.Device, so the
	// controller accepts it directly.
	spec, err := dram.ByName("DDR3-1600-x64")
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := core.NewController(kernel, core.DefaultConfig(spec), registry, "mc")
	if err != nil {
		log.Fatal(err)
	}

	// The workload: 10,000 sequential 64-byte reads, up to 16 outstanding.
	gen, err := trafficgen.New(kernel, trafficgen.Config{
		RequestBytes:   64,
		MaxOutstanding: 16,
		Count:          10000,
	}, &trafficgen.Linear{
		Start: 0, End: 64 << 20, Step: 64, ReadPercent: 100,
	}, registry, "gen")
	if err != nil {
		log.Fatal(err)
	}

	// Wire the generator's request port to the controller's response port
	// and run until the traffic completes.
	mem.Connect(gen.Port(), ctrl.Port())
	gen.Start()
	for !gen.Done() {
		kernel.RunUntil(kernel.Now() + 10*sim.Microsecond)
	}

	fmt.Printf("simulated %s in %d events\n", kernel.Now(), kernel.EventsExecuted())
	fmt.Printf("bandwidth: %.2f GB/s (bus utilisation %.1f%%, row hit rate %.1f%%)\n",
		ctrl.Bandwidth()/1e9, ctrl.BusUtilisation()*100, ctrl.RowHitRate()*100)
	fmt.Printf("mean read latency: %.1f ns\n\n", gen.ReadLatency().Mean())

	fmt.Println("statistics:")
	if err := registry.Dump(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
