package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeMem answers line fills after a fixed delay and records traffic.
type fakeMem struct {
	k       *sim.Kernel
	port    *mem.ResponsePort
	delay   sim.Tick
	reads   int
	writes  int
	refuse  int
	pending []*mem.Packet
	waiting bool
}

func newFakeMem(k *sim.Kernel, delay sim.Tick) *fakeMem {
	f := &fakeMem{k: k, delay: delay}
	f.port = mem.NewResponsePort("mem", f, k)
	return f
}

func (f *fakeMem) RecvTimingReq(pkt *mem.Packet) bool {
	if f.refuse > 0 {
		f.refuse--
		f.waiting = true
		f.k.Schedule(sim.NewEvent("memRetry", func() {
			if f.waiting {
				f.waiting = false
				f.port.SendReqRetry()
			}
		}), f.k.Now()+20*sim.Nanosecond)
		return false
	}
	if pkt.Cmd == mem.ReadReq {
		f.reads++
	} else {
		f.writes++
	}
	f.k.Schedule(sim.NewEvent("memResp", func() {
		pkt.MakeResponse()
		if !f.port.SendTimingResp(pkt) {
			f.pending = append(f.pending, pkt)
		}
	}), f.k.Now()+f.delay)
	return true
}

func (f *fakeMem) RecvRespRetry() {
	for len(f.pending) > 0 {
		if !f.port.SendTimingResp(f.pending[0]) {
			return
		}
		f.pending = f.pending[1:]
	}
}

// cpu drives the cache and records responses.
type cpu struct {
	k         *sim.Kernel
	port      *mem.RequestPort
	responses []*mem.Packet
	respTicks []sim.Tick
	blocked   *mem.Packet
	retries   int
	// onResp, when set, is invoked after each accepted response (for
	// dependent-chain tests).
	onResp func(*mem.Packet)
}

func newCPU(k *sim.Kernel) *cpu {
	c := &cpu{k: k}
	c.port = mem.NewRequestPort("cpu", c, k)
	return c
}

func (c *cpu) RecvTimingResp(pkt *mem.Packet) bool {
	c.responses = append(c.responses, pkt)
	c.respTicks = append(c.respTicks, c.k.Now())
	if c.onResp != nil {
		c.onResp(pkt)
	}
	return true
}

func (c *cpu) RecvReqRetry() {
	c.retries++
	if c.blocked != nil {
		pkt := c.blocked
		c.blocked = nil
		if !c.port.SendTimingReq(pkt) {
			c.blocked = pkt
		}
	}
}

func (c *cpu) send(pkt *mem.Packet) bool {
	pkt.IssueTick = c.k.Now()
	if !c.port.SendTimingReq(pkt) {
		c.blocked = pkt
		return false
	}
	return true
}

func defaultCfg() Config {
	return Config{
		SizeBytes:        8 * 1024,
		Assoc:            2,
		LineBytes:        64,
		HitLatency:       2 * sim.Nanosecond,
		MSHRs:            4,
		WriteBufferDepth: 8,
	}
}

func build(t *testing.T, cfg Config, memDelay sim.Tick) (*sim.Kernel, *cpu, *Cache, *fakeMem) {
	t.Helper()
	k := sim.NewKernel()
	reg := stats.NewRegistry("t")
	c, err := New(k, cfg, reg, "l1")
	if err != nil {
		t.Fatal(err)
	}
	u := newCPU(k)
	m := newFakeMem(k, memDelay)
	mem.Connect(u.port, c.CPUPort())
	mem.Connect(c.MemPort(), m.port)
	return k, u, c, m
}

func at(k *sim.Kernel, when sim.Tick, fn func()) {
	k.Schedule(sim.NewEvent("test", fn), when)
}

func TestConfigValidate(t *testing.T) {
	if err := defaultCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SizeBytes = 0 },
		func(c *Config) { c.LineBytes = 48 },
		func(c *Config) { c.Assoc = 0 },
		func(c *Config) { c.SizeBytes = 1000 },
		func(c *Config) { c.HitLatency = -1 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.WriteBufferDepth = 0 },
	}
	for i, mut := range bad {
		cfg := defaultCfg()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// Non-power-of-two set count is rejected at construction.
	k := sim.NewKernel()
	cfg := defaultCfg()
	cfg.SizeBytes = 3 * 64 * 2
	if _, err := New(k, cfg, stats.NewRegistry(""), "x"); err == nil {
		t.Error("non-pow2 set count accepted")
	}
}

func TestMissThenHit(t *testing.T) {
	k, u, c, m := build(t, defaultCfg(), 100*sim.Nanosecond)
	at(k, 0, func() { u.send(mem.NewRead(0x100, 8, 0, 0)) })
	at(k, 500*sim.Nanosecond, func() { u.send(mem.NewRead(0x108, 8, 0, 0)) })
	k.RunUntil(sim.Microsecond)
	if len(u.responses) != 2 {
		t.Fatalf("responses = %d", len(u.responses))
	}
	// First: miss -> fill (100 ns) + hit latency (2 ns).
	if u.respTicks[0] != 102*sim.Nanosecond {
		t.Fatalf("miss latency = %s, want 102ns", u.respTicks[0])
	}
	// Second: pure hit, 2 ns after issue.
	if u.respTicks[1] != 502*sim.Nanosecond {
		t.Fatalf("hit latency = %s, want 502ns", u.respTicks[1])
	}
	if c.Misses() != 1 || c.HitRate() != 0.5 {
		t.Fatalf("misses=%d hitRate=%v", c.Misses(), c.HitRate())
	}
	if m.reads != 1 {
		t.Fatalf("memory reads = %d, want 1 line fill", m.reads)
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	cfg := defaultCfg()
	cfg.SizeBytes = 2 * 64 // direct-mapped-ish tiny cache: 1 set x 2 ways
	cfg.Assoc = 2
	k, u, _, m := build(t, cfg, 50*sim.Nanosecond)
	// Write misses allocate; a third distinct line evicts the dirty LRU.
	at(k, 0, func() { u.send(mem.NewWrite(0x0, 8, 0, 0)) })
	at(k, 200*sim.Nanosecond, func() { u.send(mem.NewWrite(0x40, 8, 0, 0)) })
	at(k, 400*sim.Nanosecond, func() { u.send(mem.NewRead(0x80, 8, 0, 0)) })
	k.RunUntil(2 * sim.Microsecond)
	if len(u.responses) != 3 {
		t.Fatalf("responses = %d", len(u.responses))
	}
	if m.writes != 1 {
		t.Fatalf("writebacks to memory = %d, want 1 (dirty LRU evicted)", m.writes)
	}
	if m.reads != 3 {
		t.Fatalf("line fills = %d, want 3", m.reads)
	}
}

func TestMSHRMerge(t *testing.T) {
	k, u, c, m := build(t, defaultCfg(), 100*sim.Nanosecond)
	at(k, 0, func() {
		u.send(mem.NewRead(0x200, 8, 0, 0))
		u.send(mem.NewRead(0x208, 8, 0, 0)) // same line, in-flight
		u.send(mem.NewRead(0x210, 8, 0, 0)) // same line again
	})
	k.RunUntil(sim.Microsecond)
	if len(u.responses) != 3 {
		t.Fatalf("responses = %d", len(u.responses))
	}
	if m.reads != 1 {
		t.Fatalf("fills = %d, want 1 (merged)", m.reads)
	}
	if got := c.st.mshrMerges.Value(); got != 2 {
		t.Fatalf("merges = %v, want 2", got)
	}
}

func TestMSHRExhaustionBlocks(t *testing.T) {
	cfg := defaultCfg()
	cfg.MSHRs = 2
	k, u, c, _ := build(t, cfg, 200*sim.Nanosecond)
	at(k, 0, func() {
		u.send(mem.NewRead(0x000, 8, 0, 0))
		u.send(mem.NewRead(0x400, 8, 0, 0))
		if u.send(mem.NewRead(0x800, 8, 0, 0)) {
			t.Error("third distinct miss accepted with 2 MSHRs")
		}
	})
	k.RunUntil(2 * sim.Microsecond)
	if len(u.responses) != 3 {
		t.Fatalf("responses = %d (blocked request must be retried)", len(u.responses))
	}
	if u.retries == 0 {
		t.Fatal("no retry delivered")
	}
	if c.st.blockedOnMSHRs.Value() == 0 {
		t.Fatal("blockedOnMSHRs not counted")
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := defaultCfg()
	cfg.SizeBytes = 2 * 64 // one set, two ways
	k, u, _, m := build(t, cfg, 10*sim.Nanosecond)
	// Fill ways with A and B; touch A; insert C -> B must be evicted, so a
	// subsequent access to A still hits, to B misses.
	at(k, 0, func() { u.send(mem.NewRead(0x000, 8, 0, 0)) })                 // A
	at(k, 100*sim.Nanosecond, func() { u.send(mem.NewRead(0x40, 8, 0, 0)) }) // B
	at(k, 200*sim.Nanosecond, func() { u.send(mem.NewRead(0x00, 8, 0, 0)) }) // touch A
	at(k, 300*sim.Nanosecond, func() { u.send(mem.NewRead(0x80, 8, 0, 0)) }) // C evicts B
	at(k, 400*sim.Nanosecond, func() { u.send(mem.NewRead(0x00, 8, 0, 0)) }) // A hits
	at(k, 500*sim.Nanosecond, func() { u.send(mem.NewRead(0x40, 8, 0, 0)) }) // B misses
	k.RunUntil(2 * sim.Microsecond)
	if m.reads != 4 { // A, B, C, B-again
		t.Fatalf("fills = %d, want 4", m.reads)
	}
}

func TestMemPortBackPressure(t *testing.T) {
	k, u, _, m := build(t, defaultCfg(), 30*sim.Nanosecond)
	m.refuse = 2
	at(k, 0, func() { u.send(mem.NewRead(0x0, 8, 0, 0)) })
	k.RunUntil(2 * sim.Microsecond)
	if len(u.responses) != 1 {
		t.Fatalf("responses = %d despite memory retries", len(u.responses))
	}
}

func TestStraddlingRequestPanics(t *testing.T) {
	k, u, _, _ := build(t, defaultCfg(), 10*sim.Nanosecond)
	defer func() {
		if recover() == nil {
			t.Fatal("straddling request did not panic")
		}
	}()
	at(k, 0, func() { u.send(mem.NewRead(0x3C, 16, 0, 0)) })
	k.RunUntil(sim.Microsecond)
}

// End-to-end against the real DRAM controller: the cache filters traffic so
// the controller sees only line fills and writebacks.
func TestCacheOverDRAMController(t *testing.T) {
	k := sim.NewKernel()
	reg := stats.NewRegistry("t")
	cfg := defaultCfg()
	c, err := New(k, cfg, reg, "l1")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewController(k, core.DefaultConfig(dram.DDR3_1600_x64()), reg, "mc")
	if err != nil {
		t.Fatal(err)
	}
	u := newCPU(k)
	mem.Connect(u.port, c.CPUPort())
	mem.Connect(c.MemPort(), ctrl.Port())

	// 64 sequential 8-byte reads = 8 lines = 8 fills. Issues are spaced
	// beyond the fill latency so same-line accesses hit rather than merge
	// into the in-flight MSHR (merges count as misses, as in gem5).
	at(k, 0, func() {
		var issue func(i int)
		issue = func(i int) {
			if i >= 64 {
				return
			}
			u.send(mem.NewRead(mem.Addr(i*8), 8, 0, k.Now()))
			at(k, k.Now()+100*sim.Nanosecond, func() { issue(i + 1) })
		}
		issue(0)
	})
	for i := 0; i < 100 && len(u.responses) < 64; i++ {
		k.RunUntil(k.Now() + sim.Microsecond)
	}
	if len(u.responses) != 64 {
		t.Fatalf("responses = %d", len(u.responses))
	}
	ps := ctrl.PowerStats()
	if ps.ReadBursts != 8 {
		t.Fatalf("controller saw %d bursts, want 8 line fills", ps.ReadBursts)
	}
	if c.HitRate() < 0.85 {
		t.Fatalf("hit rate = %v, want 56/64", c.HitRate())
	}
}

// Property: every accepted request is answered exactly once and the cache
// never exceeds its MSHR bound.
func TestRandomTrafficProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel()
		reg := stats.NewRegistry("t")
		cfg := defaultCfg()
		cfg.MSHRs = 3
		c, err := New(k, cfg, reg, "l1")
		if err != nil {
			return false
		}
		u := newCPU(k)
		m := newFakeMem(k, sim.Tick(rng.Intn(100)+1)*sim.Nanosecond)
		mem.Connect(u.port, c.CPUPort())
		mem.Connect(c.MemPort(), m.port)

		n := 200
		sent := 0
		ok := true
		var inject func()
		inject = func() {
			if len(c.mshrs) > cfg.MSHRs {
				ok = false
			}
			if u.blocked == nil && sent < n {
				addr := mem.Addr(rng.Intn(1<<14)) &^ 7
				if rng.Intn(2) == 0 {
					u.send(mem.NewRead(addr, 8, 0, k.Now()))
				} else {
					u.send(mem.NewWrite(addr, 8, 0, k.Now()))
				}
				sent++
			}
			if sent < n || u.blocked != nil {
				k.Schedule(sim.NewEvent("inject", inject), k.Now()+sim.Tick(rng.Intn(20)+1)*sim.Nanosecond)
			}
		}
		k.Schedule(sim.NewEvent("inject", inject), 0)
		for i := 0; i < 1000 && len(u.responses) < n; i++ {
			k.RunUntil(k.Now() + sim.Microsecond)
		}
		return ok && len(u.responses) == n && c.Quiescent()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
