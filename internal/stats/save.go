package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Checkpoint support: every Stat kind can capture its accumulated values into
// a serializable statState and re-apply them on restore. The registry
// serializes name → state; names double as the schema check, so resuming a
// run under a different configuration (different stats registered) fails
// cleanly instead of silently mixing counters.

// distEntry is one (value, count) pair of a Distribution, kept in a sorted
// slice so the serialized form is deterministic.
type distEntry struct {
	V int64  `json:"v"`
	C uint64 `json:"c"`
}

// statState is the serialized image of one statistic. Kind tags which fields
// are meaningful. SampleMin/SampleMax are pointers because a fresh histogram
// holds ±Inf, which JSON cannot represent: nil means "no samples yet".
type statState struct {
	Kind      string      `json:"kind"`
	Value     float64     `json:"value,omitempty"`
	Sum       float64     `json:"sum,omitempty"`
	SumSq     float64     `json:"sumsq,omitempty"`
	Count     uint64      `json:"count,omitempty"`
	Buckets   []uint64    `json:"buckets,omitempty"`
	Underflow uint64      `json:"underflow,omitempty"`
	Overflow  uint64      `json:"overflow,omitempty"`
	SampleMin *float64    `json:"smin,omitempty"`
	SampleMax *float64    `json:"smax,omitempty"`
	Dist      []distEntry `json:"dist,omitempty"`
}

// savable is implemented by every Stat kind in this package.
type savable interface {
	saveState() statState
	restoreState(st statState) error
}

func kindMismatch(name, want, got string) error {
	return fmt.Errorf("stats: %q: checkpoint holds %q state, statistic is %q", name, got, want)
}

func (s *Scalar) saveState() statState {
	return statState{Kind: "scalar", Value: s.value}
}

func (s *Scalar) restoreState(st statState) error {
	if st.Kind != "scalar" {
		return kindMismatch(s.name, "scalar", st.Kind)
	}
	s.value = st.Value
	return nil
}

func (a *Average) saveState() statState {
	return statState{Kind: "average", Sum: a.sum, Count: a.count}
}

func (a *Average) restoreState(st statState) error {
	if st.Kind != "average" {
		return kindMismatch(a.name, "average", st.Kind)
	}
	a.sum, a.count = st.Sum, st.Count
	return nil
}

func (h *Histogram) saveState() statState {
	st := statState{
		Kind:      "histogram",
		Sum:       h.sum,
		SumSq:     h.sumSq,
		Count:     h.count,
		Buckets:   append([]uint64(nil), h.buckets...),
		Underflow: h.underflow,
		Overflow:  h.overflow,
	}
	if h.count > 0 {
		mn, mx := h.sampleMin, h.sampleMax
		st.SampleMin, st.SampleMax = &mn, &mx
	}
	return st
}

func (h *Histogram) restoreState(st statState) error {
	if st.Kind != "histogram" {
		return kindMismatch(h.name, "histogram", st.Kind)
	}
	if st.Buckets != nil && len(st.Buckets) != len(h.buckets) {
		return fmt.Errorf("stats: %q: checkpoint has %d buckets, histogram has %d",
			h.name, len(st.Buckets), len(h.buckets))
	}
	h.Reset()
	if st.Buckets != nil {
		copy(h.buckets, st.Buckets)
	}
	h.sum, h.sumSq, h.count = st.Sum, st.SumSq, st.Count
	h.underflow, h.overflow = st.Underflow, st.Overflow
	if st.SampleMin != nil {
		h.sampleMin = *st.SampleMin
	}
	if st.SampleMax != nil {
		h.sampleMax = *st.SampleMax
	}
	if h.count > 0 && (math.IsInf(h.sampleMin, 1) || math.IsInf(h.sampleMax, -1)) {
		return fmt.Errorf("stats: %q: checkpoint has %d samples but no min/max", h.name, h.count)
	}
	return nil
}

func (d *Distribution) saveState() statState {
	st := statState{Kind: "distribution", Count: d.total}
	keys := make([]int64, 0, len(d.counts))
	for v := range d.counts {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, v := range keys {
		st.Dist = append(st.Dist, distEntry{V: v, C: d.counts[v]})
	}
	return st
}

func (d *Distribution) restoreState(st statState) error {
	if st.Kind != "distribution" {
		return kindMismatch(d.name, "distribution", st.Kind)
	}
	d.Reset()
	d.total = st.Count
	for _, e := range st.Dist {
		d.counts[e.V] = e.C
	}
	return nil
}

// SaveState captures every registered statistic's accumulated values, keyed
// by full name. The result is JSON-serializable (map keys marshal sorted, so
// the encoding is deterministic).
func (r *Registry) SaveState() (map[string]statState, error) {
	root := r
	for root.parent != nil {
		root = root.parent
	}
	out := make(map[string]statState, len(root.stats))
	for _, s := range root.stats {
		sv, ok := s.(savable)
		if !ok {
			return nil, fmt.Errorf("stats: %q (%T) is not checkpointable", s.Name(), s)
		}
		out[s.Name()] = sv.saveState()
	}
	return out, nil
}

// RestoreState re-applies a SaveState image to the registered statistics. The
// set of names must match exactly: a statistic missing from the checkpoint,
// or a checkpointed name with no registered statistic, is a configuration
// mismatch and an error.
func (r *Registry) RestoreState(data []byte) error {
	var saved map[string]statState
	if err := json.Unmarshal(data, &saved); err != nil {
		return fmt.Errorf("stats: restore: %w", err)
	}
	root := r
	for root.parent != nil {
		root = root.parent
	}
	for _, s := range root.stats {
		st, ok := saved[s.Name()]
		if !ok {
			return fmt.Errorf("stats: %q registered but missing from checkpoint", s.Name())
		}
		sv, ok := s.(savable)
		if !ok {
			return fmt.Errorf("stats: %q (%T) is not checkpointable", s.Name(), s)
		}
		if err := sv.restoreState(st); err != nil {
			return err
		}
		delete(saved, s.Name())
	}
	if len(saved) > 0 {
		//lint:allow detmap error path names one arbitrary leftover; which one does not matter
		for name := range saved {
			return fmt.Errorf("stats: checkpoint holds %q, which is not registered (config mismatch?)", name)
		}
	}
	return nil
}
