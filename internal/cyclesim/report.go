package cyclesim

import (
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
)

// ObsSample implements obs.SampleSource: an instantaneous snapshot of the
// controller for the periodic time-series sampler. The unified transaction
// queue reports reads and writes separately so probes see the same shape as
// the event-based model.
func (c *Controller) ObsSample() obs.Sample {
	reads, writes := 0, 0
	for _, t := range c.queue {
		if t.isRead {
			reads++
		} else {
			writes++
		}
	}
	banks := make([]bool, 0, len(c.ranks)*c.spec.Org.BanksPerRank)
	for _, rk := range c.ranks {
		for i := range rk.banks {
			banks = append(banks, rk.banks[i].openRow != rowClosed)
		}
	}
	return obs.Sample{
		ReadQueueLen:   reads,
		WriteQueueLen:  writes,
		BusUtilisation: c.BusUtilisation(),
		RowHitRate:     c.RowHitRate(),
		BanksOpen:      banks,
	}
}

// PowerStats returns the Micron-model activity snapshot, mirroring the
// event-based controller's method so the §III-C3 power comparison runs the
// same equations over both models.
func (c *Controller) PowerStats() power.Activity {
	cycle := c.cycleNow()
	preAll := c.preAllCycles
	if c.openBankCount == 0 && cycle > c.allPreSinceCycle {
		preAll += cycle - c.allPreSinceCycle
	}
	return power.Activity{
		Elapsed:          c.k.Now(),
		Activations:      uint64(c.st.activations.Value()),
		ReadBursts:       uint64(c.st.readBursts.Value()),
		WriteBursts:      uint64(c.st.writeBursts.Value()),
		Refreshes:        uint64(c.st.refreshes.Value()),
		PrechargeAllTime: sim.Tick(preAll) * c.tck,
	}
}

// BusUtilisation returns the fraction of elapsed time the data bus carried
// data.
func (c *Controller) BusUtilisation() float64 {
	now := c.k.Now()
	if now <= 0 {
		return 0
	}
	bursts := c.st.readBursts.Value() + c.st.writeBursts.Value()
	busy := bursts * float64(c.spec.Timing.TBURST)
	return busy / float64(now)
}

// Bandwidth returns the achieved data bandwidth in bytes/second.
func (c *Controller) Bandwidth() float64 {
	now := c.k.Now()
	if now <= 0 {
		return 0
	}
	return (c.st.bytesRead.Value() + c.st.bytesWritten.Value()) / now.Seconds()
}

// RowHitRate returns the fraction of bursts that hit an open row.
func (c *Controller) RowHitRate() float64 {
	hits := c.st.readRowHits.Value() + c.st.writeRowHits.Value()
	total := c.st.readBursts.Value() + c.st.writeBursts.Value()
	if total == 0 {
		return 0
	}
	return hits / total
}

// AvgReadLatencyNs returns the mean read access latency in ns.
func (c *Controller) AvgReadLatencyNs() float64 { return c.st.memAccLat.Mean() }

// CyclesTicked returns the number of memory cycles the model evaluated — the
// work metric that separates cycle-based from event-based simulation.
func (c *Controller) CyclesTicked() uint64 { return uint64(c.st.cyclesTicked.Value()) }
