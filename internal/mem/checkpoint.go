package mem

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// Checkpoint support for the memory layer. Packet *identity* matters in this
// model — the crossbar routes a response by looking up the same pointer it
// forwarded as a request, and a controller's queues alias the transaction
// they belong to — so a checkpoint cannot serialize packets inline per
// component. Instead the checkpoint manager owns a packet table: during save
// every component refers to packets by table reference (PacketTable), and
// during restore the manager materializes each saved packet exactly once and
// components re-link to the shared instance (PacketLookup).

// PacketTable assigns stable integer references to live packets during a
// checkpoint save. Asking twice for the same packet returns the same ref.
type PacketTable interface {
	PacketRef(p *Packet) int
}

// PacketLookup resolves packet references during a checkpoint restore. Every
// call with the same ref returns the same materialized *Packet.
type PacketLookup interface {
	PacketByRef(ref int) *Packet
}

// PacketState is the serializable image of one Packet.
type PacketState struct {
	Cmd         Cmd      `json:"cmd"`
	Addr        Addr     `json:"addr"`
	Size        uint64   `json:"size"`
	RequestorID int      `json:"requestor"`
	IssueTick   sim.Tick `json:"issue"`
	Poisoned    bool     `json:"poisoned,omitempty"`
}

// SaveState captures the packet for checkpointing. Packets carrying Meta are
// not serializable (Meta is requestor-private and opaque); checkpointing a
// system whose requestors attach Meta is an error, reported cleanly.
func (p *Packet) SaveState() (PacketState, error) {
	if p.Meta != nil {
		return PacketState{}, fmt.Errorf("mem: packet %s carries non-nil Meta; not checkpointable", p)
	}
	return PacketState{
		Cmd: p.Cmd, Addr: p.Addr, Size: p.Size,
		RequestorID: p.RequestorID, IssueTick: p.IssueTick, Poisoned: p.Poisoned,
	}, nil
}

// Materialize rebuilds the packet from its saved image.
func (ps PacketState) Materialize() *Packet {
	return &Packet{
		Cmd: ps.Cmd, Addr: ps.Addr, Size: ps.Size,
		RequestorID: ps.RequestorID, IssueTick: ps.IssueTick, Poisoned: ps.Poisoned,
	}
}

// linkEntryState is one undelivered in-flight packet on a pipe.
type linkEntryState struct {
	At  sim.Tick `json:"at"`
	Pkt int      `json:"pkt"`
}

// linkPipeState is one direction of a ShardLink.
type linkPipeState struct {
	Blocked bool             `json:"blocked,omitempty"`
	Inbox   []linkEntryState `json:"inbox,omitempty"`
	Drain   sim.EventState   `json:"drain"`
}

// linkState is the serializable image of a ShardLink.
type linkState struct {
	Req  linkPipeState `json:"req"`
	Resp linkPipeState `json:"resp"`
}

func (p *pipe) save(pt PacketTable) (linkPipeState, error) {
	if len(p.outbox) != 0 {
		// Checkpoints are taken at quantum barriers after Flush, where every
		// outbox is empty. A populated outbox means the caller broke that rule.
		return linkPipeState{}, fmt.Errorf("mem: link %q checkpointed with %d unflushed packets", p.name, len(p.outbox))
	}
	st := linkPipeState{Blocked: p.blocked, Drain: p.drain.Capture()}
	for _, ent := range p.inbox[p.head:] {
		st.Inbox = append(st.Inbox, linkEntryState{At: ent.at, Pkt: pt.PacketRef(ent.pkt)})
	}
	return st, nil
}

func (p *pipe) restore(pl PacketLookup, rs sim.Restorer, st linkPipeState) {
	// A freshly constructed pipe has nothing scheduled; only state needs
	// rebuilding, plus a deferred re-arm of the drain event if it was pending.
	p.blocked = st.Blocked
	p.outbox = p.outbox[:0]
	p.inbox = p.inbox[:0]
	p.head = 0
	for _, ent := range st.Inbox {
		p.inbox = append(p.inbox, timedPkt{at: ent.At, pkt: pl.PacketByRef(ent.Pkt)})
	}
	if st.Drain.Scheduled {
		when := st.Drain.When
		rs.Defer(st.Drain.Seq, func() { p.dst.Schedule(p.drain, when) })
	}
}

// CheckpointSave captures both directions of the link. It must be called at a
// quantum barrier, after Flush, so the outboxes are empty.
func (l *ShardLink) CheckpointSave(pt PacketTable) (any, error) {
	req, err := l.req.save(pt)
	if err != nil {
		return nil, err
	}
	resp, err := l.resp.save(pt)
	if err != nil {
		return nil, err
	}
	return linkState{Req: req, Resp: resp}, nil
}

// CheckpointRestore rebuilds the link's buffered traffic and re-arms its
// delivery events through the restorer.
func (l *ShardLink) CheckpointRestore(pl PacketLookup, rs sim.Restorer, data []byte) error {
	var st linkState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("mem: link restore: %w", err)
	}
	l.req.restore(pl, rs, st.Req)
	l.resp.restore(pl, rs, st.Resp)
	return nil
}
