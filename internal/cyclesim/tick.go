package cyclesim

import (
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
)

// ct converts a cycle number to kernel ticks for observability timestamps.
func (c *Controller) ct(cycle int64) sim.Tick { return sim.Tick(cycle) * c.tck }

// tick is the per-cycle evaluation: deliver due responses, issue at most one
// DRAM command on the shared command bus, and re-arm for the next cycle.
// This is the cycle-by-cycle technique the paper's event-based model
// replaces; keeping it genuinely per-cycle is what makes the §III-D
// simulation-speed comparison meaningful.
func (c *Controller) tick() {
	cycle := int64(c.k.Now() / c.tck)
	if cycle == c.lastCycle {
		// Already evaluated this cycle (a request arrived on the same
		// edge); just make sure the clock keeps running.
		c.rearm(cycle)
		return
	}
	c.lastCycle = cycle
	c.st.cyclesTicked.Inc()

	c.maintain(cycle)
	c.drainResponses(cycle)
	if !c.refreshWork(cycle) {
		c.scheduleCommand(cycle)
	}
	c.rearm(cycle)
}

// drainResponses sends every response whose ready cycle has passed.
func (c *Controller) drainResponses(cycle int64) {
	for !c.retryResp && len(c.resp) > 0 && c.resp[0].ready <= cycle {
		e := c.resp[0]
		if e.pkt.Cmd.IsRequest() {
			e.pkt.MakeResponse()
		}
		if !c.port.SendTimingResp(e.pkt) {
			c.retryResp = true
			return
		}
		if c.hub != nil {
			c.hub.Emit(obs.ResponseSent{Src: c.name, At: c.k.Now(), Pkt: e.pkt})
		}
		c.resp = c.resp[1:]
	}
}

// refreshWork handles due refreshes; it returns true if refresh used the
// command slot this cycle.
func (c *Controller) refreshWork(cycle int64) bool {
	for ri, rk := range c.ranks {
		if cycle < rk.refreshDue {
			continue
		}
		// Precharge open banks first, one command per cycle.
		for i := range rk.banks {
			b := &rk.banks[i]
			if b.openRow != rowClosed {
				if cycle >= b.nextPre {
					c.prechargeBank(b, ri, i, cycle)
					return true
				}
				return false // wait for the precharge window
			}
		}
		// All closed: wait until precharges complete, then refresh.
		for i := range rk.banks {
			if cycle < rk.banks[i].nextAct {
				return false
			}
		}
		for i := range rk.banks {
			rk.banks[i].nextAct = cycle + c.cycles.tRFC
			rk.banks[i].status = bankRefreshing
			rk.banks[i].countdown = c.cycles.tRFC
		}
		rk.refreshDue += c.cycles.tREFI
		c.st.refreshes.Inc()
		if c.hub != nil {
			at := c.ct(cycle)
			done := c.ct(cycle + c.cycles.tRFC)
			c.hub.Emit(obs.DRAMCommand{Src: c.name, Cmd: power.Command{Kind: power.CmdREF, Rank: ri, At: at}})
			c.hub.Emit(obs.RefreshStart{Src: c.name, At: at, Rank: ri, Bank: -1, Until: done})
			c.hub.Emit(obs.RefreshEnd{Src: c.name, At: done, Rank: ri, Bank: -1})
		}
		return true
	}
	return false
}

// scheduleCommand issues at most one command: a ready row-hit column access
// (FR-FCFS), otherwise the oldest transaction that can make progress via
// column, activate or precharge.
func (c *Controller) scheduleCommand(cycle int64) {
	if len(c.queue) == 0 {
		return
	}
	limit := len(c.queue)
	if c.cfg.Scheduling == FCFS {
		limit = 1
	}
	// Pass 1: ready row hits (first-ready).
	for i := 0; i < limit; i++ {
		t := c.queue[i]
		rk := c.ranks[t.coord.Rank]
		b := &rk.banks[t.coord.Bank]
		if b.openRow == int64(t.coord.Row) && c.canIssueColumn(rk, b, t, cycle) {
			c.issueColumn(rk, b, t, i, cycle)
			return
		}
	}
	// Pass 2: oldest transaction that can progress.
	for i := 0; i < limit; i++ {
		t := c.queue[i]
		rk := c.ranks[t.coord.Rank]
		b := &rk.banks[t.coord.Bank]
		switch {
		case b.openRow == rowClosed:
			if c.canActivate(rk, b, cycle) {
				c.activateBank(rk, b, t.coord.Rank, t.coord.Bank, int64(t.coord.Row), cycle)
				return
			}
		case b.openRow != int64(t.coord.Row):
			if cycle >= b.nextPre {
				c.prechargeBank(b, t.coord.Rank, t.coord.Bank, cycle)
				return
			}
		}
	}
}

func (c *Controller) canIssueColumn(rk *crank, b *cbank, t *txn, cycle int64) bool {
	if cycle < b.nextCol {
		return false
	}
	if cycle+c.cycles.tCL < c.busFree {
		return false
	}
	if t.isRead {
		return cycle >= rk.nextRd
	}
	return cycle >= rk.nextWr
}

func (c *Controller) canActivate(rk *crank, b *cbank, cycle int64) bool {
	if cycle < b.nextAct || cycle < rk.lastAct+c.cycles.tRRD {
		return false
	}
	limit := c.spec.Org.ActivationLimit
	if limit > 0 && len(rk.actWindow) >= limit {
		oldest := rk.actWindow[len(rk.actWindow)-limit]
		if cycle < oldest+c.cycles.tXAW {
			return false
		}
	}
	return true
}

func (c *Controller) activateBank(rk *crank, b *cbank, rankIdx, bankIdx int, row, cycle int64) {
	if c.hub != nil {
		c.hub.Emit(obs.DRAMCommand{Src: c.name, Cmd: power.Command{Kind: power.CmdACT, Rank: rankIdx, Bank: bankIdx, At: c.ct(cycle)}})
	}
	b.openRow = row
	b.openedFresh = true
	b.status = bankActivating
	b.countdown = c.cycles.tRCD
	c.noteActivate()
	b.nextCol = cycle + c.cycles.tRCD
	if pre := cycle + c.cycles.tRAS; pre > b.nextPre {
		b.nextPre = pre
	}
	rk.lastAct = cycle
	if limit := c.spec.Org.ActivationLimit; limit > 0 {
		rk.actWindow = append(rk.actWindow, cycle)
		if len(rk.actWindow) > limit {
			rk.actWindow = rk.actWindow[len(rk.actWindow)-limit:]
		}
	}
	c.st.activations.Inc()
	if c.openBankCount == 0 {
		if d := cycle - c.allPreSinceCycle; d > 0 {
			c.preAllCycles += d
		}
	}
	c.openBankCount++
}

func (c *Controller) prechargeBank(b *cbank, rankIdx, bankIdx int, cycle int64) {
	if b.openRow == rowClosed {
		return
	}
	if c.hub != nil {
		c.hub.Emit(obs.DRAMCommand{Src: c.name, Cmd: power.Command{Kind: power.CmdPRE, Rank: rankIdx, Bank: bankIdx, At: c.ct(cycle)}})
	}
	b.openRow = rowClosed
	b.status = bankPrecharging
	b.countdown = c.cycles.tRP
	if act := cycle + c.cycles.tRP; act > b.nextAct {
		b.nextAct = act
	}
	c.st.precharges.Inc()
	c.openBankCount--
	if c.openBankCount == 0 {
		c.allPreSinceCycle = cycle + c.cycles.tRP
	}
}

// issueColumn performs the data transfer for queue index i and removes the
// transaction from the queue.
func (c *Controller) issueColumn(rk *crank, b *cbank, t *txn, i int, cycle int64) {
	dataEnd := cycle + c.cycles.tCL + c.cycles.tBURST
	c.busFree = dataEnd
	if c.hub != nil {
		kind := power.CmdWR
		if t.isRead {
			kind = power.CmdRD
		}
		c.hub.Emit(obs.DRAMCommand{Src: c.name, Cmd: power.Command{Kind: kind, Rank: t.coord.Rank, Bank: t.coord.Bank, At: c.ct(cycle)}})
		c.hub.Emit(obs.BurstScheduled{
			Src: c.name, At: c.ct(cycle), Pkt: t.parent.pkt, Read: t.isRead,
			Rank: t.coord.Rank, Bank: t.coord.Bank, Row: t.coord.Row,
			DataEnd: c.ct(dataEnd),
		})
	}

	if b.openedFresh {
		b.openedFresh = false
	} else if t.isRead {
		c.st.readRowHits.Inc()
	} else {
		c.st.writeRowHits.Inc()
	}

	c.noteBurst(t.isRead)
	burstBytes := float64(c.spec.Org.BurstBytes())
	if t.isRead {
		c.st.readBursts.Inc()
		c.st.bytesRead.Add(burstBytes)
		if pre := cycle + c.cycles.tRTP; pre > b.nextPre {
			b.nextPre = pre
		}
		if wr := dataEnd + c.cycles.tRTW; wr > rk.nextWr {
			rk.nextWr = wr
		}
	} else {
		c.st.writeBursts.Inc()
		c.st.bytesWritten.Add(burstBytes)
		if pre := dataEnd + c.cycles.tWR; pre > b.nextPre {
			b.nextPre = pre
		}
		if rd := dataEnd + c.cycles.tWTR; rd > rk.nextRd {
			rk.nextRd = rd
		}
	}

	if c.cfg.Page == ClosedPage {
		// Auto-precharge as soon as the bank's constraints allow.
		pre := b.nextPre
		if c.hub != nil {
			c.hub.Emit(obs.DRAMCommand{Src: c.name, Cmd: power.Command{Kind: power.CmdPRE, Rank: t.coord.Rank, Bank: t.coord.Bank, At: c.ct(pre)}})
		}
		b.openRow = rowClosed
		b.openedFresh = false
		b.status = bankPrecharging
		b.countdown = pre + c.cycles.tRP - cycle
		if act := pre + c.cycles.tRP; act > b.nextAct {
			b.nextAct = act
		}
		c.st.precharges.Inc()
		c.openBankCount--
		if c.openBankCount == 0 {
			c.allPreSinceCycle = pre + c.cycles.tRP
		}
	}

	c.queue = append(c.queue[:i], c.queue[i+1:]...)
	if c.retryReq {
		c.retryReq = false
		c.port.SendReqRetry()
	}

	t.parent.remaining--
	if t.isRead && t.parent.remaining == 0 {
		pkt := t.parent.pkt
		lat := (sim.Tick(dataEnd)*c.tck - pkt.IssueTick).Nanoseconds()
		c.st.memAccLat.Sample(lat)
		c.resp = insertResp(c.resp, respWait{pkt: pkt, ready: dataEnd})
	}
}

// rearm schedules the next cycle. The faithful DRAMSim2 behaviour is to
// tick every cycle unconditionally; with IdleSkip the clock parks while the
// controller is completely quiescent, waking for the next refresh deadline.
func (c *Controller) rearm(cycle int64) {
	if c.tickEvent.Scheduled() {
		return
	}
	if !c.cfg.IdleSkip || len(c.queue) > 0 || len(c.resp) > 0 {
		c.k.Schedule(c.tickEvent, sim.Tick(cycle+1)*c.tck)
		return
	}
	next := c.ranks[0].refreshDue
	for _, rk := range c.ranks[1:] {
		if rk.refreshDue < next {
			next = rk.refreshDue
		}
	}
	if next <= cycle {
		next = cycle + 1
	}
	c.k.Schedule(c.tickEvent, sim.Tick(next)*c.tck)
}
