// Package cache implements a set-associative, write-back/write-allocate
// timing cache with a bounded number of MSHRs. It is the cache substrate for
// the paper's full-system-style case studies (§IV): gem5's cache hierarchy
// is what sits between the cores and the DRAM controllers there, and its
// blocking behaviour (finite MSHRs) is what closes the feedback loop between
// memory latency and request arrival that traces cannot capture.
package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config shapes one cache instance.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes uint64
	// Assoc is the set associativity.
	Assoc int
	// LineBytes is the cache line size.
	LineBytes uint64
	// HitLatency is the lookup/response latency.
	HitLatency sim.Tick
	// MSHRs bounds outstanding misses; when exhausted the cache refuses
	// requests (back pressure toward the core).
	MSHRs int
	// WriteBufferDepth bounds queued writebacks.
	WriteBufferDepth int
	// Prefetch selects the prefetcher (extension; see prefetch.go).
	Prefetch PrefetchPolicy
	// PrefetchDegree is how many lines ahead the stride prefetcher runs
	// (0 means the default of 2).
	PrefetchDegree int
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes == 0 || c.LineBytes == 0:
		return fmt.Errorf("cache: zero size or line")
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: associativity must be positive")
	case c.SizeBytes%(c.LineBytes*uint64(c.Assoc)) != 0:
		return fmt.Errorf("cache: size %d not divisible by way size", c.SizeBytes)
	case c.HitLatency < 0:
		return fmt.Errorf("cache: negative hit latency")
	case c.MSHRs <= 0:
		return fmt.Errorf("cache: MSHRs must be positive")
	case c.WriteBufferDepth <= 0:
		return fmt.Errorf("cache: write buffer depth must be positive")
	case c.PrefetchDegree < 0:
		return fmt.Errorf("cache: negative prefetch degree")
	case c.Prefetch != PrefetchNone && c.MSHRs < 2:
		return fmt.Errorf("cache: prefetching needs at least 2 MSHRs")
	}
	switch c.Prefetch {
	case PrefetchNone, PrefetchNextLine, PrefetchStride:
	default:
		return fmt.Errorf("cache: unknown prefetch policy %d", c.Prefetch)
	}
	return nil
}

// line is one tag-store entry.
type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
	// prefetched marks lines brought in by the prefetcher and not yet
	// touched by demand traffic (for accuracy accounting).
	prefetched bool
}

// mshr tracks one outstanding line fill and the requests waiting on it.
type mshr struct {
	lineAddr mem.Addr
	waiters  []*mem.Packet
	issued   sim.Tick
	// fill is the line-sized read sent downstream.
	fill *mem.Packet
	// prefetch marks speculative fills with no demand waiter yet.
	prefetch bool
}

// Cache is a single cache level with a CPU-side response port and a
// memory-side request port.
type Cache struct {
	name string
	cfg  Config
	k    *sim.Kernel

	cpuPort *mem.ResponsePort
	memPort *mem.RequestPort

	sets    [][]line
	setMask uint64
	useTick uint64

	mshrs map[mem.Addr]*mshr
	// strides tracks per-requestor stride detection state.
	strides map[int]*strideState
	// wbQueue holds writebacks (and the blocked fill, if any) awaiting the
	// memory port.
	wbQueue    []*mem.Packet
	memBlocked bool

	// respQueue delays hit responses by HitLatency.
	respQueue []respEntry
	respEvent *sim.Event
	retryResp bool
	retryReq  bool

	st cacheStats
}

type respEntry struct {
	pkt    *mem.Packet
	sendAt sim.Tick
}

type cacheStats struct {
	hits, misses     *stats.Scalar
	readHits         *stats.Scalar
	writeHits        *stats.Scalar
	writebacks       *stats.Scalar
	mshrMerges       *stats.Scalar
	evictions        *stats.Scalar
	missLatency      *stats.Average
	blockedOnMSHRs   *stats.Scalar
	prefetches       *stats.Scalar
	usefulPrefetches *stats.Scalar
	poisonedFills    *stats.Scalar
}

// New builds a cache registering statistics under name.
func New(k *sim.Kernel, cfg Config, reg *stats.Registry, name string) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / cfg.LineBytes / uint64(cfg.Assoc)
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", numSets)
	}
	c := &Cache{
		name:    name,
		cfg:     cfg,
		k:       k,
		sets:    make([][]line, numSets),
		setMask: numSets - 1,
		mshrs:   make(map[mem.Addr]*mshr),
		strides: make(map[int]*strideState),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	c.cpuPort = mem.NewResponsePort(name+".cpu", (*cacheCPUSide)(c), k)
	c.memPort = mem.NewRequestPort(name+".mem", (*cacheMemSide)(c), k)
	c.respEvent = sim.NewEvent(name+".resp", c.processResponses)
	r := reg.Child(name)
	c.st = cacheStats{
		hits:             r.NewScalar("hits", "demand hits"),
		misses:           r.NewScalar("misses", "demand misses"),
		readHits:         r.NewScalar("readHits", "read hits"),
		writeHits:        r.NewScalar("writeHits", "write hits"),
		writebacks:       r.NewScalar("writebacks", "dirty lines written back"),
		mshrMerges:       r.NewScalar("mshrMerges", "misses merged into in-flight fills"),
		evictions:        r.NewScalar("evictions", "lines evicted"),
		missLatency:      r.NewAverage("missLatency", "miss (fill) latency (ns)"),
		blockedOnMSHRs:   r.NewScalar("blockedOnMSHRs", "requests refused with MSHRs full"),
		prefetches:       r.NewScalar("prefetches", "prefetch fills issued"),
		usefulPrefetches: r.NewScalar("usefulPrefetches", "prefetched lines used by demand"),
		poisonedFills:    r.NewScalar("poisonedFills", "fills returned with an uncorrectable-error poison flag"),
	}
	return c, nil
}

// CPUPort returns the core-facing response port.
func (c *Cache) CPUPort() *mem.ResponsePort { return c.cpuPort }

// MemPort returns the memory-facing request port.
func (c *Cache) MemPort() *mem.RequestPort { return c.memPort }

// Name returns the instance name.
func (c *Cache) Name() string { return c.name }

// HitRate returns hits/(hits+misses).
func (c *Cache) HitRate() float64 {
	total := c.st.hits.Value() + c.st.misses.Value()
	if total == 0 {
		return 0
	}
	return c.st.hits.Value() / total
}

// AvgMissLatencyNs returns the mean fill latency — the "L2 miss latency"
// metric of the paper's Figure 8.
func (c *Cache) AvgMissLatencyNs() float64 { return c.st.missLatency.Mean() }

// Misses returns the demand miss count.
func (c *Cache) Misses() uint64 { return uint64(c.st.misses.Value()) }

// Quiescent reports whether no fills or queued work are outstanding.
func (c *Cache) Quiescent() bool {
	return len(c.mshrs) == 0 && len(c.wbQueue) == 0 && len(c.respQueue) == 0
}

func (c *Cache) indexOf(lineAddr mem.Addr) (set uint64, tag uint64) {
	l := uint64(lineAddr) / c.cfg.LineBytes
	return l & c.setMask, l >> popcount(c.setMask)
}

func popcount(mask uint64) uint {
	n := uint(0)
	for mask != 0 {
		n += uint(mask & 1)
		mask >>= 1
	}
	return n
}

// lookup finds the way holding tag in set, or -1.
func (c *Cache) lookup(set, tag uint64) int {
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return i
		}
	}
	return -1
}

// victim picks the LRU way in a set.
func (c *Cache) victim(set uint64) int {
	best, bestUse := 0, ^uint64(0)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if !w.valid {
			return i
		}
		if w.lastUse < bestUse {
			best, bestUse = i, w.lastUse
		}
	}
	return best
}

// touch refreshes LRU state.
func (c *Cache) touch(set uint64, way int) {
	c.useTick++
	c.sets[set][way].lastUse = c.useTick
}
