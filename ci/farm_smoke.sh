#!/usr/bin/env bash
# Farm smoke test: the simfarm job server must survive a worker being
# SIGKILLed mid-point and still produce a merged result byte-identical to the
# single-process CLI run of the same grid; a resubmission must be served
# entirely from the fingerprint cache; and a killed worker's point must
# resume from its periodic checkpoint bit-identically.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill -9 "$srv_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/simfarm" ./cmd/simfarm
go build -o "$workdir/explore" ./cmd/explore

echo "== phase A: worker kill -9 mid-point, checkpoint resume is bit-identical"
ptdir="$workdir/pt"
mkdir -p "$ptdir"
# A sweep point slow enough (~2s) that the kill lands mid-simulation.
cat > "$ptdir/point.json" <<'EOF'
{"kind":"sweep","figure":3,"requests":300000,"stride":1,"banks":1}
EOF
"$workdir/simfarm" -worker -point "$ptdir/point.json" -out "$ptdir/clean.json" \
    -ckpt-dir "$ptdir" -ckpt-every 200ms 2>/dev/null
"$workdir/simfarm" -worker -point "$ptdir/point.json" -out "$ptdir/resumed.json" \
    -ckpt-dir "$ptdir" -ckpt-every 200ms 2>"$ptdir/victim.log" &
victim=$!
for _ in $(seq 1 100); do
    [ -f "$ptdir/point-event.ckpt" ] && break
    sleep 0.05
done
sleep 0.5
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
if [ -f "$ptdir/resumed.json" ]; then
    echo "FAIL: victim worker finished before the kill; grow requests" >&2
    exit 1
fi
"$workdir/simfarm" -worker -point "$ptdir/point.json" -out "$ptdir/resumed.json" \
    -ckpt-dir "$ptdir" -ckpt-every 200ms 2>"$ptdir/resume.log"
grep -q "supervisor: resumed from" "$ptdir/resume.log" || {
    echo "FAIL: killed point did not resume from its checkpoint:" >&2
    cat "$ptdir/resume.log" >&2
    exit 1
}
cmp "$ptdir/clean.json" "$ptdir/resumed.json" || {
    echo "FAIL: resumed point differs from the uninterrupted one" >&2
    exit 1
}
echo "killed worker's point resumed bit-identically"

echo "== phase B: server survives a worker kill; merged result == single-process run"
"$workdir/explore" -memops 100000 -cores 8 -json "$workdir/ref.json" >/dev/null
addr=127.0.0.1:7163
"$workdir/simfarm" -addr "$addr" -data "$workdir/farm.d" -workers 2 \
    -attempts 3 -backoff-base 100ms -ckpt-every 300ms 2>"$workdir/server.log" &
srv_pid=$!
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "http://$addr/healthz" >/dev/null || {
    echo "FAIL: server never became healthy" >&2
    cat "$workdir/server.log" >&2
    exit 1
}
curl -fsS -X POST "http://$addr/jobs" -d '{"type":"explore","memOps":100000,"cores":8}' >/dev/null
sleep 2
victim_pid=$(curl -fsS "http://$addr/workers" | grep -o '"pid": [0-9]*' | head -1 | grep -o '[0-9]*')
if [ -z "$victim_pid" ]; then
    echo "FAIL: no busy worker to kill (job too fast?)" >&2
    exit 1
fi
echo "kill -9 worker pid $victim_pid mid-point"
kill -9 "$victim_pid"
status=running
for _ in $(seq 1 600); do
    status=$(curl -fsS "http://$addr/jobs/j1" | grep -o '"status": "[a-z]*"' | head -1 | cut -d'"' -f4)
    [ "$status" != running ] && break
    sleep 0.2
done
if [ "$status" != done ]; then
    echo "FAIL: job finished '$status', want done" >&2
    curl -fsS "http://$addr/jobs/j1" >&2 || true
    exit 1
fi
curl -fsS "http://$addr/jobs/j1" | grep -q '"attempts": 2' || {
    echo "FAIL: no point shows a second attempt — did the kill land?" >&2
    curl -fsS "http://$addr/jobs/j1" >&2
    exit 1
}
curl -fsS "http://$addr/jobs/j1/result" > "$workdir/merged.json"
cmp "$workdir/ref.json" "$workdir/merged.json" || {
    echo "FAIL: farm-merged result differs from single-process explore -json" >&2
    exit 1
}
echo "merged result is byte-identical to the single-process run"

echo "== phase C: resubmission is served entirely from the cache"
resp=$(curl -fsS -X POST "http://$addr/jobs" -d '{"type":"explore","memOps":100000,"cores":8}')
echo "$resp" | grep -q '"points": 3' && echo "$resp" | grep -q '"cached": 3' || {
    echo "FAIL: resubmit not fully cached: $resp" >&2
    exit 1
}
curl -fsS "http://$addr/jobs/j2/result" > "$workdir/cached.json"
cmp "$workdir/ref.json" "$workdir/cached.json" || {
    echo "FAIL: cache-served result differs" >&2
    exit 1
}
echo "resubmitted job: 3/3 points from cache, result identical"

echo "== graceful shutdown persists the queue"
kill -INT "$srv_pid"
for _ in $(seq 1 100); do
    kill -0 "$srv_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$srv_pid" 2>/dev/null; then
    echo "FAIL: server ignored SIGINT" >&2
    exit 1
fi
srv_pid=""
[ -f "$workdir/farm.d/state.json" ] || {
    echo "FAIL: shutdown left no persisted queue" >&2
    exit 1
}
grep -q '"id": "j1"' "$workdir/farm.d/state.json" || {
    echo "FAIL: persisted queue lost job j1" >&2
    exit 1
}
echo "server drained and persisted state.json"

echo "farm smoke: OK"
