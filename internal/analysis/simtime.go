package analysis

import (
	"go/ast"
	"go/types"
)

// Simtime forbids host wall-clock and the global math/rand source inside
// sim-core packages. Simulated time is the only clock the model may observe:
// a time.Now() in a scheduling decision makes two identical runs diverge, and
// a draw from the process-global rand source breaks the draw-count replay the
// checkpoint subsystem uses to resume generators bit-identically (every draw
// must come from a seeded *rand.Rand the component owns, so its position in
// the stream can be saved and replayed). The check flags any reference — not
// just calls — so passing time.Now as a function value is caught too.
var Simtime = &Analyzer{
	Name: "simtime",
	Doc:  "forbid time.Now/time.Since and the global math/rand source in sim-core packages",
	Run:  runSimtime,
}

// randAllowed are the math/rand package-level functions that construct seeded
// generators rather than drawing from the global source.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runSimtime(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			f, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || f.Pkg() == nil {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch f.Pkg().Path() {
			case "time":
				if f.Name() == "Now" || f.Name() == "Since" {
					pass.Reportf(id.Pos(), "time.%s reads the host clock inside a sim path; use the kernel's simulated time", f.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randAllowed[f.Name()] {
					pass.Reportf(id.Pos(), "rand.%s draws from the global source; use a seeded *rand.Rand so draw-count replay stays valid", f.Name())
				}
			}
			return true
		})
	}
}
