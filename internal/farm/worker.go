package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/experiments"
)

// WorkerOptions configures one worker invocation (simfarm -worker): read a
// point, run it, write the result. The server talks to workers only through
// these files, so a worker can be killed at any instant without corrupting
// anything — the point file is read-only, checkpoints and the result are
// written atomically.
type WorkerOptions struct {
	// PointPath is the JSON-encoded Point to run.
	PointPath string
	// OutPath receives the JSON-encoded PointResult (atomic temp+rename).
	OutPath string
	// CkptDir, when non-empty, enables periodic mid-point checkpoints for
	// sweep points; a retried attempt resumes from them bit-identically.
	CkptDir string
	// EveryWall is the checkpoint cadence (0 = only at completion).
	EveryWall time.Duration
	// Log receives supervisor diagnostics; nil discards them.
	Log io.Writer
}

// Worker runs one point to completion in this process.
func Worker(opts WorkerOptions) error {
	data, err := os.ReadFile(opts.PointPath)
	if err != nil {
		return fmt.Errorf("farm: worker point: %w", err)
	}
	var p Point
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("farm: worker point: %w", err)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	var ck *experiments.PointCheckpoint
	if opts.CkptDir != "" {
		ck = &experiments.PointCheckpoint{Dir: opts.CkptDir, EveryWall: opts.EveryWall, Log: opts.Log}
	}
	res, err := p.Run(ck)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("farm: worker result: %w", err)
	}
	if err := checkpoint.WriteFileAtomic(opts.OutPath, append(out, '\n')); err != nil {
		return fmt.Errorf("farm: worker result: %w", err)
	}
	// The point completed and its result is durable; the mid-point
	// checkpoints have served their purpose. Best-effort removal keeps the
	// attempt directory from accumulating stale images that a *different*
	// future point could never resume from anyway (fingerprint-checked) but
	// would still waste disk.
	if opts.CkptDir != "" {
		for _, name := range []string{"point-event.ckpt", "point-cycle.ckpt"} {
			os.Remove(filepath.Join(opts.CkptDir, name)) //nolint:errcheck
		}
	}
	return nil
}
