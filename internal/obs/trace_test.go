// Trace determinism and checkpoint tests: the headline guarantees of the
// observability layer are that a trace is byte-identical across identical
// runs, byte-identical across -parallel worker counts, reconciles with the
// aggregate statistics, and survives a checkpoint/restore cycle exactly.
package obs_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/trafficgen"
	"repro/internal/xbar"
)

// runCoreTraced drives a short random-traffic run through the event-based
// controller with a lifecycle tracer attached and returns the trace bytes
// plus the controller's aggregate activity.
func runCoreTraced(t *testing.T, path string, count uint64) power.Activity {
	t.Helper()
	tw, err := obs.NewTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.BeginFresh(); err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(0)
	hub := obs.NewHub()
	hub.Attach(tracer)
	sink := obs.NewTraceSink(tw, tracer)

	k := sim.NewKernel()
	reg := stats.NewRegistry("obstest")
	spec := dram.DDR3_1600_x64()
	cfg := core.DefaultConfig(spec)
	cfg.Probes = hub
	ctrl, err := core.NewController(k, cfg, reg, "mc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trafficgen.New(k, trafficgen.Config{
		RequestBytes:   64,
		MaxOutstanding: 16,
		Count:          count,
	}, &trafficgen.Random{
		Start: 0, End: 1 << 26, Align: 64, ReadPercent: 60, Seed: 7,
	}, reg, "gen")
	if err != nil {
		t.Fatal(err)
	}
	mem.Connect(gen.Port(), ctrl.Port())
	gen.Start()
	for k.Now() < 10*sim.Second {
		if _, err := k.RunUntilErr(k.Now() + 10*sim.Microsecond); err != nil {
			t.Fatal(err)
		}
		// Flush mid-run at every poll: flush timing must not affect bytes.
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		if gen.Done() {
			if !ctrl.Quiescent() {
				ctrl.Drain()
				continue
			}
			break
		}
	}
	if !gen.Done() {
		t.Fatal("traced run did not complete")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return ctrl.PowerStats()
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Two identical runs must produce byte-identical trace files, and the file
// must parse as strict Chrome trace JSON with balanced lifecycle spans.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	runCoreTraced(t, a, 500)
	runCoreTraced(t, b, 500)
	ab, bb := readFile(t, a), readFile(t, b)
	if !bytes.Equal(ab, bb) {
		t.Fatalf("identical runs produced different traces (%d vs %d bytes)", len(ab), len(bb))
	}
	sum, err := obs.ValidateTraceStrict(a)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events == 0 || !sum.Terminated {
		t.Fatalf("trace not well formed: %+v", sum)
	}
	if sum.OpenSpans() != 0 {
		t.Fatalf("%d lifecycle spans left open (begins %d, ends %d)",
			sum.OpenSpans(), sum.SpanBegins, sum.SpanEnds)
	}
}

// The trace must tell the same story as the controller's own counters:
// every burst, activate and refresh the controller accounts for appears in
// the trace exactly once.
func TestTraceReconcilesWithStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.json")
	act := runCoreTraced(t, path, 800)
	sum, err := obs.ValidateTraceStrict(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := uint64(sum.Bursts), act.ReadBursts+act.WriteBursts; got != want {
		t.Errorf("trace has %d bursts, controller counted %d", got, want)
	}
	if got, want := uint64(sum.Activates), act.Activations; got != want {
		t.Errorf("trace has %d ACTs, controller counted %d", got, want)
	}
	if got, want := uint64(sum.Refreshes), act.Refreshes; got != want {
		t.Errorf("trace has %d REFs, controller counted %d", got, want)
	}
}

// runShardedTraced drives the multi-channel sharded rig with a frontend
// tracer plus one tracer per channel shard and returns the merged trace.
func runShardedTraced(t *testing.T, path string, channels, workers int) {
	t.Helper()
	tw, err := obs.NewTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.BeginFresh(); err != nil {
		t.Fatal(err)
	}
	const stride = 1000
	frontTracer := obs.NewTracer(0)
	frontHub := obs.NewHub()
	frontHub.Attach(frontTracer)
	tracers := []*obs.Tracer{frontTracer}
	shardHubs := make([]*obs.Hub, channels)
	for i := range shardHubs {
		tr := obs.NewTracer((i + 1) * stride)
		h := obs.NewHub()
		h.Attach(tr)
		tracers = append(tracers, tr)
		shardHubs[i] = h
	}
	sink := obs.NewTraceSink(tw, tracers...)

	spec := dram.DDR3_1600_x64()
	gen := trafficgen.Config{
		RequestBytes:   spec.Org.BurstBytes(),
		MaxOutstanding: 16,
		Count:          400,
	}
	g0, g1 := gen, gen
	g0.RequestorID = 0
	g1.RequestorID = 1
	rig, err := system.NewShardedRig(system.ShardedConfig{
		Kind:     system.EventBased,
		Spec:     spec,
		Mapping:  dram.RoRaBaCoCh,
		Channels: channels,
		Xbar:     xbar.DefaultConfig(),
		Gens:     []trafficgen.Config{g0, g1},
		Patterns: []trafficgen.Pattern{
			&trafficgen.Linear{Start: 0, End: 1 << 24, Step: 64, ReadPercent: 80, Seed: 11},
			&trafficgen.Random{Start: 0, End: 1 << 24, Align: 64, ReadPercent: 60, Seed: 23},
		},
		Workers:     workers,
		FrontProbes: frontHub,
		ShardProbes: shardHubs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rig.Run(50 * sim.Millisecond) {
		t.Fatal("sharded rig did not complete")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

// The merged sharded trace must not depend on how many worker goroutines
// executed the channel shards: serial and parallel runs of the same
// topology produce byte-identical files.
func TestShardedTraceIndependentOfWorkers(t *testing.T) {
	dir := t.TempDir()
	serial := filepath.Join(dir, "w1.json")
	runShardedTraced(t, serial, 2, 1)
	ref := readFile(t, serial)
	for _, workers := range []int{2, 3} {
		path := filepath.Join(dir, "wn.json")
		runShardedTraced(t, path, 2, workers)
		if got := readFile(t, path); !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d trace differs from serial (%d vs %d bytes)",
				workers, len(got), len(ref))
		}
	}
	if _, err := obs.ValidateTraceStrict(serial); err != nil {
		t.Fatal(err)
	}
}

// stubRefs is a PacketTable/PacketLookup pair for checkpoint tests: packets
// are identified by index in a fixed slice.
type stubRefs struct{ pkts []*mem.Packet }

func (s *stubRefs) PacketRef(p *mem.Packet) int {
	for i, q := range s.pkts {
		if q == p {
			return i
		}
	}
	return -1
}

func (s *stubRefs) PacketByRef(ref int) *mem.Packet {
	if ref < 0 || ref >= len(s.pkts) {
		return nil
	}
	return s.pkts[ref]
}

// syntheticPhases returns two event batches: phase 1 leaves packet spans
// open across the checkpoint boundary (the hard case — the restored tracer
// must close them with the original span ids), phase 2 closes everything.
func syntheticPhases(pkts []*mem.Packet) (phase1, phase2 []obs.Event) {
	us := func(n int64) sim.Tick { return sim.Tick(n) * sim.Microsecond }
	phase1 = []obs.Event{
		obs.QueueAdmit{Src: "mc", At: us(1), Queue: obs.QueueRead, Depth: 0},
		obs.PacketEnqueued{Src: "mc", At: us(1), Pkt: pkts[0], Queue: obs.QueueRead, Bursts: 1},
		obs.QueueAdmit{Src: "mc", At: us(2), Queue: obs.QueueWrite, Depth: 1},
		obs.PacketEnqueued{Src: "mc", At: us(2), Pkt: pkts[1], Queue: obs.QueueWrite, Bursts: 2},
		obs.DRAMCommand{Src: "mc", Cmd: power.Command{Kind: power.CmdACT, At: us(3), Rank: 0, Bank: 1}},
		obs.BurstScheduled{Src: "mc", At: us(4), Pkt: pkts[0], Read: true, Rank: 0, Bank: 1, Row: 7, DataEnd: us(5)},
		obs.WriteDrainEnter{Src: "mc", At: us(6), QueueLen: 3},
	}
	phase2 = []obs.Event{
		obs.ResponseSent{Src: "mc", At: us(7), Pkt: pkts[0]},
		obs.WriteDrainExit{Src: "mc", At: us(8), Writes: 3},
		obs.BurstScheduled{Src: "mc", At: us(9), Pkt: pkts[1], Read: false, Rank: 0, Bank: 2, Row: 9, DataEnd: us(10)},
		obs.RefreshStart{Src: "mc", At: us(11), Rank: 0, Bank: -1, Until: us(12)},
		obs.RefreshEnd{Src: "mc", At: us(12), Rank: 0, Bank: -1},
		obs.ResponseSent{Src: "mc", At: us(13), Pkt: pkts[1]},
		obs.QueueRefuse{Src: "xbar", At: us(14), Queue: obs.QueueRead, Depth: 16},
		obs.ShardQuantumFlush{Src: "xbar", At: us(15), Shard: 1, Requests: 2, Responses: 1},
	}
	return phase1, phase2
}

// A checkpoint taken mid-trace, followed by further (lost) progress and a
// restore into a fresh process, must reproduce the uninterrupted file
// byte-for-byte — including span ids allocated before the checkpoint.
func TestTraceSinkCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pkts := []*mem.Packet{{}, {}}
	refs := &stubRefs{pkts: pkts}
	phase1, phase2 := syntheticPhases(pkts)

	emit := func(tr *obs.Tracer, evs []obs.Event) {
		for _, ev := range evs {
			tr.HandleEvent(ev)
		}
	}

	// Reference: uninterrupted run.
	refPath := filepath.Join(dir, "ref.json")
	tw, err := obs.NewTraceWriter(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.BeginFresh(); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(0)
	sink := obs.NewTraceSink(tw, tr)
	emit(tr, phase1)
	emit(tr, phase2)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	want := readFile(t, refPath)

	// Crash run: phase 1, checkpoint, doomed post-checkpoint progress.
	path := filepath.Join(dir, "crash.json")
	tw1, err := obs.NewTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw1.BeginFresh(); err != nil {
		t.Fatal(err)
	}
	tr1 := obs.NewTracer(0)
	sink1 := obs.NewTraceSink(tw1, tr1)
	emit(tr1, phase1)
	img, err := sink1.CheckpointSave(refs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(img)
	if err != nil {
		t.Fatal(err)
	}
	emit(tr1, phase2[:3]) // progress the crash will throw away
	if err := sink1.Flush(); err != nil {
		t.Fatal(err)
	}
	// No Close: the process died. The file ends mid-array, unterminated.

	// Resumed process: fresh writer/tracer over the same file, restore.
	tw2, err := obs.NewTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := obs.NewTracer(0)
	sink2 := obs.NewTraceSink(tw2, tr2)
	if err := sink2.CheckpointRestore(refs, nil, data); err != nil {
		t.Fatal(err)
	}
	emit(tr2, phase2)
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); !bytes.Equal(got, want) {
		t.Fatalf("resumed trace differs from uninterrupted reference:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Restoring into the wrong topology must be rejected, not corrupt.
	tw3, err := obs.NewTraceWriter(filepath.Join(dir, "bad.json"))
	if err != nil {
		t.Fatal(err)
	}
	bad := obs.NewTraceSink(tw3, obs.NewTracer(0), obs.NewTracer(1000))
	if err := bad.CheckpointRestore(refs, nil, data); err == nil {
		t.Fatal("restore with mismatched tracer count unexpectedly succeeded")
	}
}

// The hub must normalize "nothing attached" to nil so components pay one
// pointer comparison, and the CommandFunc shim must see exactly the DRAM
// command stream.
func TestHubOrNilAndCommandFunc(t *testing.T) {
	var empty *obs.Hub
	if empty.OrNil() != nil {
		t.Error("nil hub did not normalize to nil")
	}
	if obs.NewHub().OrNil() != nil {
		t.Error("empty hub did not normalize to nil")
	}
	var got []power.Command
	h := obs.NewHub()
	h.Attach(obs.CommandFunc(func(c power.Command) { got = append(got, c) }))
	if h.OrNil() == nil {
		t.Fatal("hub with a probe normalized to nil")
	}
	h.Emit(obs.DRAMCommand{Src: "mc", Cmd: power.Command{Kind: power.CmdACT, At: 5}})
	h.Emit(obs.QueueAdmit{Src: "mc", At: 6})
	h.Emit(obs.DRAMCommand{Src: "mc", Cmd: power.Command{Kind: power.CmdPRE, At: 7}})
	if len(got) != 2 || got[0].Kind != power.CmdACT || got[1].Kind != power.CmdPRE {
		t.Fatalf("CommandFunc saw %v", got)
	}
}
