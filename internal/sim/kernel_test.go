package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTickUnits(t *testing.T) {
	if Nanosecond != 1000 {
		t.Fatalf("Nanosecond = %d, want 1000", Nanosecond)
	}
	if Second != 1e12 {
		t.Fatalf("Second = %d, want 1e12", Second)
	}
	if got := Tick(13750).Nanoseconds(); got != 13.75 {
		t.Fatalf("13750 ticks = %v ns, want 13.75", got)
	}
}

func TestTickString(t *testing.T) {
	cases := []struct {
		in   Tick
		want string
	}{
		{500, "500ps"},
		{13750, "13.75ns"},
		{5 * Microsecond, "5us"},
		{2 * Second, "2s"},
		{MaxTick, "max"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Tick(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFrequencyPeriod(t *testing.T) {
	cases := []struct {
		f    Frequency
		want Tick
	}{
		{1 * GHz, 1000},
		{2 * GHz, 500},
		{666 * MHz, 1502}, // 1.501501...ns rounds to 1502 ps
		{200 * MHz, 5000},
	}
	for _, c := range cases {
		if got := c.f.Period(); got != c.want {
			t.Errorf("Period(%v Hz) = %d, want %d", float64(c.f), got, c.want)
		}
	}
}

func TestFrequencyPeriodPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Period(0) did not panic")
		}
	}()
	Frequency(0).Period()
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	add := func(id int, when Tick, pri Priority) {
		k.Schedule(NewEventPri("e", pri, func() { order = append(order, id) }), when)
	}
	add(3, 30, DefaultPriority)
	add(1, 10, DefaultPriority)
	add(2, 20, DefaultPriority)
	add(0, 10, MinPriority) // same tick as 1, lower priority value => first
	k.Run()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %d, want 30", k.Now())
	}
	if k.EventsExecuted() != 4 {
		t.Fatalf("executed = %d, want 4", k.EventsExecuted())
	}
}

func TestKernelFIFOWithinTickAndPriority(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(NewEvent("e", func() { order = append(order, i) }), 5)
	}
	k.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("insertion order not preserved at %d: %v", i, order[:i+1])
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(NewEvent("a", func() {}), 100)
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.Schedule(NewEvent("b", func() {}), 50)
}

func TestDoubleSchedulePanics(t *testing.T) {
	k := NewKernel()
	e := NewEvent("e", func() {})
	k.Schedule(e, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("double schedule did not panic")
		}
	}()
	k.Schedule(e, 20)
}

func TestDescheduleAndReschedule(t *testing.T) {
	k := NewKernel()
	fired := 0
	e := NewEvent("e", func() { fired++ })
	k.Schedule(e, 10)
	k.Deschedule(e)
	if e.Scheduled() {
		t.Fatal("event still scheduled after Deschedule")
	}
	k.Reschedule(e, 40)
	k.Reschedule(e, 25) // move earlier while scheduled
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 25 {
		t.Fatalf("Now = %d, want 25", k.Now())
	}
}

func TestDescheduleUnscheduledPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("deschedule of unscheduled event did not panic")
		}
	}()
	k.Deschedule(NewEvent("e", func() {}))
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Tick
	for _, w := range []Tick{10, 20, 30, 40} {
		w := w
		k.Schedule(NewEvent("e", func() { fired = append(fired, w) }), w)
	}
	k.RunUntil(25)
	if len(fired) != 2 || k.Now() != 25 {
		t.Fatalf("after RunUntil(25): fired=%v now=%d", fired, k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	k.RunUntil(100)
	if len(fired) != 4 || k.Now() != 100 {
		t.Fatalf("after RunUntil(100): fired=%v now=%d", fired, k.Now())
	}
}

func TestStopDuringRun(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := Tick(1); i <= 10; i++ {
		k.Schedule(NewEvent("e", func() {
			count++
			if count == 3 {
				k.Stop()
			}
		}), i)
	}
	k.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
	if k.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", k.Pending())
	}
}

func TestEventScheduledDuringExecution(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Schedule(NewEvent("first", func() {
		order = append(order, "first")
		k.ScheduleIn(NewEvent("chained", func() { order = append(order, "chained") }), 5)
		// Same-tick follow-up runs after the current event.
		k.ScheduleIn(NewEvent("same", func() { order = append(order, "same") }), 0)
	}), 10)
	k.Run()
	want := []string{"first", "same", "chained"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 15 {
		t.Fatalf("Now = %d, want 15", k.Now())
	}
}

// Property: for any set of (tick, priority) pairs, execution order equals the
// stable sort by (tick, priority, insertion index).
func TestKernelOrderProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		type job struct {
			when Tick
			pri  Priority
			idx  int
		}
		jobs := make([]job, count)
		k := NewKernel()
		var got []int
		for i := 0; i < count; i++ {
			jobs[i] = job{Tick(rng.Intn(50)), Priority(rng.Intn(5) - 2), i}
			j := jobs[i]
			k.Schedule(NewEventPri("e", j.pri, func() { got = append(got, j.idx) }), j.when)
		}
		sort.SliceStable(jobs, func(a, b int) bool {
			if jobs[a].when != jobs[b].when {
				return jobs[a].when < jobs[b].when
			}
			return jobs[a].pri < jobs[b].pri
		})
		k.Run()
		if len(got) != count {
			return false
		}
		for i := range jobs {
			if got[i] != jobs[i].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never executes events beyond the limit and never leaves
// time beyond the limit.
func TestRunUntilProperty(t *testing.T) {
	prop := func(seed int64, limRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		limit := Tick(limRaw % 1000)
		ok := true
		for i := 0; i < 100; i++ {
			when := Tick(rng.Intn(2000))
			k.Schedule(NewEvent("e", func() {
				if k.Now() > limit {
					ok = false
				}
			}), when)
		}
		k.RunUntil(limit)
		return ok && k.Now() == limit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
