package trafficgen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TraceRecord is one line of a memory trace: a timestamped read or write.
type TraceRecord struct {
	Tick   sim.Tick
	IsRead bool
	Addr   mem.Addr
	Size   uint64
}

// ParseTrace reads a whitespace-separated text trace with lines of the form
//
//	<tick-ps> <r|w> <hex-addr> <size-bytes>
//
// Blank lines and lines starting with '#' are skipped. Records must be
// sorted by tick.
func ParseTrace(r io.Reader) ([]TraceRecord, error) {
	var out []TraceRecord
	sc := bufio.NewScanner(r)
	lineNo := 0
	var lastTick sim.Tick
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		tick, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || tick < 0 {
			return nil, fmt.Errorf("trace line %d: bad tick %q", lineNo, fields[0])
		}
		var isRead bool
		switch strings.ToLower(fields[1]) {
		case "r", "read":
			isRead = true
		case "w", "write":
			isRead = false
		default:
			return nil, fmt.Errorf("trace line %d: bad command %q", lineNo, fields[1])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: bad address %q", lineNo, fields[2])
		}
		size, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil || size == 0 {
			return nil, fmt.Errorf("trace line %d: bad size %q", lineNo, fields[3])
		}
		if sim.Tick(tick) < lastTick {
			return nil, fmt.Errorf("trace line %d: ticks not sorted", lineNo)
		}
		lastTick = sim.Tick(tick)
		out = append(out, TraceRecord{Tick: sim.Tick(tick), IsRead: isRead, Addr: mem.Addr(addr), Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatTrace writes records in the format ParseTrace reads.
func FormatTrace(w io.Writer, recs []TraceRecord) error {
	for _, r := range recs {
		cmd := "w"
		if r.IsRead {
			cmd = "r"
		}
		if _, err := fmt.Fprintf(w, "%d %s 0x%x %d\n", int64(r.Tick), cmd, uint64(r.Addr), r.Size); err != nil {
			return err
		}
	}
	return nil
}

// TracePlayer replays a parsed trace through a memory port, respecting
// record timestamps (a record never issues early; back pressure may delay
// it, preserving order).
type TracePlayer struct {
	k    *sim.Kernel
	port *mem.RequestPort
	recs []TraceRecord
	next int

	outstanding int
	blocked     *mem.Packet
	tick        *sim.Event
	requestorID int

	completed uint64
}

// NewTracePlayer builds a player for recs.
func NewTracePlayer(k *sim.Kernel, recs []TraceRecord, requestorID int) *TracePlayer {
	p := &TracePlayer{k: k, recs: recs, requestorID: requestorID}
	p.port = mem.NewRequestPort("trace.port", p, k)
	p.tick = sim.NewEvent("trace.tick", p.issue)
	return p
}

// Port returns the memory-side request port.
func (p *TracePlayer) Port() *mem.RequestPort { return p.port }

// Start schedules the first record.
func (p *TracePlayer) Start() {
	if len(p.recs) == 0 {
		return
	}
	when := p.recs[0].Tick
	if now := p.k.Now(); when < now {
		when = now
	}
	p.k.Schedule(p.tick, when)
}

// Done reports whether every record has been issued and answered.
func (p *TracePlayer) Done() bool {
	return p.next >= len(p.recs) && p.outstanding == 0 && p.blocked == nil
}

// Completed returns the number of responses received.
func (p *TracePlayer) Completed() uint64 { return p.completed }

func (p *TracePlayer) issue() {
	now := p.k.Now()
	for p.blocked == nil && p.next < len(p.recs) && p.recs[p.next].Tick <= now {
		r := p.recs[p.next]
		p.next++
		var pkt *mem.Packet
		if r.IsRead {
			pkt = mem.NewRead(r.Addr, r.Size, p.requestorID, now)
		} else {
			pkt = mem.NewWrite(r.Addr, r.Size, p.requestorID, now)
		}
		p.outstanding++
		if !p.port.SendTimingReq(pkt) {
			p.blocked = pkt
			return
		}
	}
	if p.blocked == nil && p.next < len(p.recs) && !p.tick.Scheduled() {
		p.k.Schedule(p.tick, p.recs[p.next].Tick)
	}
}

// RecvTimingResp implements mem.Requestor.
func (p *TracePlayer) RecvTimingResp(*mem.Packet) bool {
	p.outstanding--
	p.completed++
	return true
}

// RecvReqRetry implements mem.Requestor.
func (p *TracePlayer) RecvReqRetry() {
	if p.blocked == nil {
		return
	}
	pkt := p.blocked
	p.blocked = nil
	if !p.port.SendTimingReq(pkt) {
		p.blocked = pkt
		return
	}
	p.issue()
}
