package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
	"repro/internal/supervisor"
	"repro/internal/system"
)

// Point-level entry points for the sweep farm (internal/farm): a distributed
// sweep fans individual measurement points out to worker processes, so each
// point must be runnable on its own — and, for crash recovery, resumable from
// a periodic checkpoint so a re-run point is bit-identical to an
// uninterrupted one. The single-process drivers (RunSweep, RunFig9) and the
// farm workers share these functions, which is what makes a farm-merged
// result byte-identical to a single-process run of the same grid.

// SpecForFigure returns the bandwidth-sweep spec for one paper figure.
func SpecForFigure(figure int, requests uint64) (SweepSpec, error) {
	switch figure {
	case 3:
		return Fig3Spec(requests), nil
	case 4:
		return Fig4Spec(requests), nil
	case 5:
		return Fig5Spec(requests), nil
	}
	return SweepSpec{}, fmt.Errorf("experiments: figure %d is not a bandwidth sweep (want 3, 4 or 5)", figure)
}

// PointCheckpoint configures mid-point crash recovery for one sweep point:
// the worker checkpoints each model's rig into Dir on a wall-clock cadence,
// and a re-run of the same point resumes from the newest image instead of
// starting over. Checkpoint resume is bit-identical (see internal/checkpoint),
// so a point that was killed and resumed reports exactly the utilisation an
// uninterrupted run would have.
type PointCheckpoint struct {
	// Dir holds the per-model checkpoint files; "" disables checkpointing.
	Dir string
	// EveryWall is the wall-clock checkpoint cadence (0 = only at completion).
	EveryWall time.Duration
	// Log receives supervisor diagnostics; nil discards them.
	Log io.Writer
}

// RunSweepPoint measures one (stride, banks) sweep point on both models,
// optionally under supervision with periodic checkpoints (ck non-nil with a
// Dir). The row it returns is identical to the one RunSweep computes for the
// same point.
func RunSweepPoint(s SweepSpec, stride uint64, banks int, ck *PointCheckpoint) (SweepRow, error) {
	row := SweepRow{StrideBursts: stride, Banks: banks}
	supervised := ck != nil && ck.Dir != ""
	run := func(kind system.Kind, name string) (float64, error) {
		if !supervised {
			return runPoint(kind, s, stride, banks)
		}
		path := fmt.Sprintf("%s/point-%s.ckpt", ck.Dir, name)
		return runPointSupervised(kind, s, stride, banks, path, ck.EveryWall, ck.Log)
	}
	ev, err := run(system.EventBased, "event")
	if err != nil {
		return row, err
	}
	cy, err := run(system.CycleBased, "cycle")
	if err != nil {
		return row, err
	}
	row.EventUtil, row.CycleUtil = ev, cy
	return row, nil
}

// sweepPointFingerprint canonicalizes everything that shapes one point's
// simulated schedule, so a checkpoint is never resumed under a different
// point, model or grid configuration.
func sweepPointFingerprint(kind system.Kind, s SweepSpec, stride uint64, banks int) string {
	return fmt.Sprintf("sweeppoint fig=%d spec=%s mapping=%s closed=%t reads=%d requests=%d model=%s stride=%d banks=%d",
		s.Figure, s.Spec.Name, s.Mapping, s.ClosedPage, s.ReadPct, s.Requests, kind, stride, banks)
}

// runPointSupervised is runPoint under internal/supervisor: the rig steps in
// quanta (the same quanta TrafficRig.Run uses, so the measured utilisation is
// the same float), checkpoints periodically, and resumes from an existing
// checkpoint file bit-identically.
func runPointSupervised(kind system.Kind, s SweepSpec, stride uint64, banks int, ckptPath string, everyWall time.Duration, log io.Writer) (float64, error) {
	var rig *system.TrafficRig
	res, err := supervisor.Run(supervisor.Config{
		Checkpoint: ckptPath,
		EveryWall:  everyWall,
		Resume:     true,
		Log:        log,
	}, func() (supervisor.Session, error) {
		r, err := buildPointRig(kind, s, stride, banks)
		if err != nil {
			return nil, err
		}
		rig = r
		return r.NewSession(sweepPointFingerprint(kind, s, stride, banks), sim.Second)
	})
	if err != nil {
		return 0, err
	}
	if !res.Done {
		return 0, fmt.Errorf("experiments: %s point stride=%d banks=%d did not complete", kind, stride, banks)
	}
	return rig.Ctrl.BusUtilisation(), nil
}

// buildPointRig wires the single-channel rig for one sweep point; runPoint
// and runPointSupervised share it so both paths simulate the same schedule.
func buildPointRig(kind system.Kind, s SweepSpec, stride uint64, banks int) (*system.TrafficRig, error) {
	pattern, err := sweepPattern(s, stride, banks, 1)
	if err != nil {
		return nil, err
	}
	return system.NewTrafficRig(system.RigConfig{
		Kind:       kind,
		Spec:       s.Spec,
		Mapping:    s.Mapping,
		ClosedPage: s.ClosedPage,
		Gen:        trafficGenConfig(s),
		Pattern:    pattern,
	})
}

// NumExplorePoints returns the number of memory systems in the §IV-B case
// study — the explore grid's point count.
func NumExplorePoints() int { return len(Fig9Configs()) }

// RunExplorePoint measures one memory system of the case study. NormIPC is
// left zero: normalisation needs the DDR3 baseline, so it happens at merge
// time (NormalizeFig9).
func RunExplorePoint(memOps uint64, cores, index int) (Fig9Row, error) {
	configs := Fig9Configs()
	if index < 0 || index >= len(configs) {
		return Fig9Row{}, fmt.Errorf("experiments: explore point %d out of range (have %d memory systems)", index, len(configs))
	}
	return runFig9Config(configs[index], memOps, cores)
}

// NormalizeFig9 fills every row's NormIPC relative to the first (DDR3) row.
// Call only on a complete result — a partial one has no trustworthy baseline.
func NormalizeFig9(res *Fig9Result) {
	if len(res.Rows) == 0 {
		return
	}
	base := res.Rows[0].IPC
	for i := range res.Rows {
		res.Rows[i].NormIPC = res.Rows[i].IPC / base
	}
}
