package stats

import (
	"bytes"
	"testing"
)

// buildRegistry fills a registry with a distribution whose samples arrive in
// the given order. Same multiset of samples, different arrival order: every
// derived report must still come out byte-identical.
func buildRegistry(order []int64) *Registry {
	reg := NewRegistry("sim")
	d := reg.NewDistribution("bytesPerAct", "bytes per activate")
	for _, v := range order {
		for i := int64(0); i <= v%5; i++ {
			d.Sample(v)
		}
	}
	s := reg.NewScalar("reads", "read count")
	s.Add(12345)
	return reg
}

// TestDumpJSONByteIdentical guards the deterministic report paths: the
// distribution mean folds floats over sorted values (not map order), and
// DumpJSON emits keys sorted. Two registries fed the same samples in
// different orders, and repeated dumps of the same registry, must all render
// byte-for-byte the same.
func TestDumpJSONByteIdentical(t *testing.T) {
	forward := make([]int64, 0, 400)
	backward := make([]int64, 0, 400)
	for v := int64(0); v < 400; v++ {
		forward = append(forward, v*7+1)
	}
	for i := len(forward) - 1; i >= 0; i-- {
		backward = append(backward, forward[i])
	}

	a, b := buildRegistry(forward), buildRegistry(backward)

	var bufA, bufB bytes.Buffer
	if err := a.DumpJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.DumpJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("JSON dumps differ with sample order:\n--- forward ---\n%s--- backward ---\n%s", bufA.String(), bufB.String())
	}

	// Repeated dumps of one registry are stable too.
	for i := 0; i < 20; i++ {
		var again bytes.Buffer
		if err := a.DumpJSON(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA.Bytes(), again.Bytes()) {
			t.Fatalf("dump %d differs from the first", i)
		}
	}
}

// TestDistributionMeanOrderIndependent pins the sorted-fold fix in
// Distribution.Mean: float addition is not associative, so folding in map
// order gave run-to-run different means for the same samples.
func TestDistributionMeanOrderIndependent(t *testing.T) {
	a, b := buildRegistry(nil), buildRegistry(nil)
	da := a.Get("sim.bytesPerAct").(*Distribution)
	db := b.Get("sim.bytesPerAct").(*Distribution)
	// Values chosen to have non-representable thirds so accumulation order
	// actually matters at the ULP level.
	vals := []int64{1, 3, 7, 11, 33333, 999999937, 2, 5}
	for _, v := range vals {
		da.Sample(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		db.Sample(vals[i])
	}
	ma, mb := da.Mean(), db.Mean()
	if ma != mb {
		t.Errorf("means differ with insertion order: %v vs %v", ma, mb)
	}
	for i := 0; i < 50; i++ {
		if got := da.Mean(); got != ma {
			t.Fatalf("repeated Mean() diverged: %v vs %v", got, ma)
		}
	}
}
