// Package faults implements a deterministic, seed-driven DRAM fault model:
// per-burst bit-error rates (with optional per-rank scaling), stuck-at rows,
// and transient read faults, together with row-retirement bookkeeping. The
// controller consults the injector on every read burst and maps the outcome
// onto its SEC-DED ECC, retry/replay and scrub machinery; the injector itself
// is pure state with no notion of time, so identical access sequences under
// identical seeds always produce identical fault sequences (reproducibility
// is a hard requirement — the simulator exists to make experiments
// repeatable, and a fault study that cannot be replayed is worthless).
//
// The rates are per *read burst*, not per bit: a SEC-DED (72,64) code word
// covers 64 data bits, so a 64-byte burst holds eight code words, and what
// the controller observes per burst is simply "no error", "a correctable
// (single-bit) error in some word", or "an uncorrectable (multi-bit) error".
// Collapsing the per-bit process into per-burst probabilities keeps the model
// event-based — no per-bit work happens anywhere.
package faults

import "fmt"

// Outcome classifies what the ECC logic sees on one read burst.
type Outcome int

// Read-burst outcomes, in increasing order of severity.
const (
	// OK means the burst returned clean data.
	OK Outcome = iota
	// Correctable is a single-bit error per SEC-DED word: the controller
	// corrects it in-line (paying a correction latency) and schedules a
	// demand-scrub writeback of the corrected data.
	Correctable
	// Uncorrectable is a multi-bit error SEC-DED can only detect: the
	// response is poisoned and propagated to the requester, never silently
	// consumed.
	Uncorrectable
	// Transient is a whole-burst failure (DDR4 CA-parity style): the burst
	// carried no usable data and must be replayed after a backoff.
	Transient
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Correctable:
		return "correctable"
	case Uncorrectable:
		return "uncorrectable"
	case Transient:
		return "transient"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// StuckRow pins one DRAM row to a fixed failure mode: every read burst from
// it yields Kind until the row is retired (remapped to a spare).
type StuckRow struct {
	Rank, Bank int
	Row        uint64
	Kind       Outcome
}

// Config describes the fault environment. The zero value injects nothing.
type Config struct {
	// Seed drives the deterministic pseudo-random draw; two runs with the
	// same seed and the same access sequence see identical faults.
	Seed uint64
	// CorrectablePerBurst is the probability a read burst suffers a
	// correctable (single-bit) error.
	CorrectablePerBurst float64
	// UncorrectablePerBurst is the probability of a detectable but
	// uncorrectable (multi-bit) error.
	UncorrectablePerBurst float64
	// TransientPerBurst is the probability of a transient whole-burst
	// failure that is retried rather than corrected.
	TransientPerBurst float64
	// RankScale optionally scales all three rates per rank (index = rank;
	// missing ranks default to 1.0), modelling a marginal DIMM.
	RankScale []float64
	// StuckRows lists rows with permanent failure modes.
	StuckRows []StuckRow
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.CorrectablePerBurst > 0 || c.UncorrectablePerBurst > 0 ||
		c.TransientPerBurst > 0 || len(c.StuckRows) > 0
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	rates := [3]float64{c.CorrectablePerBurst, c.UncorrectablePerBurst, c.TransientPerBurst}
	sum := 0.0
	for _, r := range rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: rate %v out of [0,1]", r)
		}
		sum += r
	}
	if sum > 1 {
		return fmt.Errorf("faults: rates sum to %v > 1", sum)
	}
	for i, s := range c.RankScale {
		if s < 0 {
			return fmt.Errorf("faults: negative rank scale %v for rank %d", s, i)
		}
	}
	for i, sr := range c.StuckRows {
		if sr.Rank < 0 || sr.Bank < 0 {
			return fmt.Errorf("faults: stuck row %d has negative rank/bank", i)
		}
		switch sr.Kind {
		case Correctable, Uncorrectable, Transient:
		default:
			return fmt.Errorf("faults: stuck row %d has kind %s", i, sr.Kind)
		}
	}
	return nil
}

// rowKey identifies one physical row for the stuck/retired maps.
type rowKey struct {
	rank, bank int
	row        uint64
}

// Injector is the runtime fault source. It is not safe for concurrent use,
// matching the single-threaded simulation kernel.
type Injector struct {
	cfg     Config
	state   uint64
	stuck   map[rowKey]Outcome
	retired map[rowKey]bool
	draws   uint64
}

// NewInjector validates cfg and builds an injector.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		cfg:     cfg,
		state:   cfg.Seed,
		stuck:   make(map[rowKey]Outcome, len(cfg.StuckRows)),
		retired: make(map[rowKey]bool),
	}
	for _, sr := range cfg.StuckRows {
		in.stuck[rowKey{sr.Rank, sr.Bank, sr.Row}] = sr.Kind
	}
	return in, nil
}

// next advances the splitmix64 generator one step.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	in.draws++
	return z ^ (z >> 31)
}

// uniform returns a deterministic draw in [0,1).
func (in *Injector) uniform() float64 {
	return float64(in.next()>>11) / float64(1<<53)
}

// Draws returns how many random draws have been consumed — a cheap
// fingerprint for reproducibility checks.
func (in *Injector) Draws() uint64 { return in.draws }

// OnReadBurst decides the fate of one read burst from (rank, bank, row).
// Retired rows are remapped to healthy spares and always return clean data;
// stuck rows return their configured failure mode; everything else draws
// from the configured per-burst rates.
func (in *Injector) OnReadBurst(rank, bank int, row uint64) Outcome {
	key := rowKey{rank, bank, row}
	if in.retired[key] {
		return OK
	}
	if kind, ok := in.stuck[key]; ok {
		return kind
	}
	scale := 1.0
	if rank >= 0 && rank < len(in.cfg.RankScale) {
		scale = in.cfg.RankScale[rank]
	}
	u := in.uniform()
	c := in.cfg.CorrectablePerBurst * scale
	uc := in.cfg.UncorrectablePerBurst * scale
	tr := in.cfg.TransientPerBurst * scale
	switch {
	case u < c:
		return Correctable
	case u < c+uc:
		return Uncorrectable
	case u < c+uc+tr:
		return Transient
	}
	return OK
}

// RetireRow remaps a row to a spare: subsequent reads from it return clean
// data regardless of stuck-at configuration or random draws. It reports
// whether the row was newly retired.
func (in *Injector) RetireRow(rank, bank int, row uint64) bool {
	key := rowKey{rank, bank, row}
	if in.retired[key] {
		return false
	}
	// Retirement is the fault path's last resort (retry limit exhausted);
	// fault-free steady state — the condition the zero-alloc gates run
	// under — never reaches it.
	//lint:allow hotalloc row retirement happens at most once per failing row, on the fault path only
	in.retired[key] = true
	return true
}

// RetiredRows returns how many rows have been retired so far.
func (in *Injector) RetiredRows() int { return len(in.retired) }
