package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// Events far beyond the bucket window must still interleave correctly with
// near events scheduled later: the far heap refills the ring as the window
// advances, and ordering is global, not per-level.
func TestQueueFarNearInterleave(t *testing.T) {
	k := NewKernel()
	var got []Tick
	record := func(at Tick) func() { return func() { got = append(got, at) } }

	// Far first (beyond the ~262ns window), then near, then mid.
	for _, at := range []Tick{Second, 500 * Nanosecond, 5 * Nanosecond, 300 * Nanosecond, Microsecond} {
		k.Schedule(NewEvent("e", record(at)), at)
	}
	k.Run()

	want := []Tick{5 * Nanosecond, 300 * Nanosecond, 500 * Nanosecond, Microsecond, Second}
	if len(got) != len(want) {
		t.Fatalf("fired %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// A far event that becomes the earliest pending work after the window drains
// makes the cursor jump, not crawl; and an event scheduled afterwards at an
// earlier tick (behind the parked cursor) must still fire first.
func TestQueueCursorRetreat(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Schedule(NewEvent("warm", func() { order = append(order, "warm") }), 10*Nanosecond)
	k.Schedule(NewEvent("far", func() { order = append(order, "far") }), 10*Microsecond)

	// Run past the near event; the cursor parks at the far event's bucket.
	if now := k.RunUntil(Microsecond); now != Microsecond {
		t.Fatalf("RunUntil left now at %s", now)
	}
	// Schedule between runs, earlier than the parked cursor.
	k.Schedule(NewEvent("behind", func() { order = append(order, "behind") }), 2*Microsecond)
	k.Schedule(NewEvent("far2", func() { order = append(order, "far2") }), 11*Microsecond)
	k.Run()

	want := []string{"warm", "behind", "far", "far2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Call draws events from the kernel free list: steady-state one-shot work
// must reuse fired events rather than growing the pool without bound.
func TestQueueCallPoolReuse(t *testing.T) {
	k := NewKernel()
	fired := 0
	var rearm func()
	rearm = func() {
		fired++
		if fired < 1000 {
			k.CallIn("tick", Nanosecond, rearm)
		}
	}
	k.Call("tick", 0, rearm)
	k.Run()
	if fired != 1000 {
		t.Fatalf("fired = %d", fired)
	}
	if len(k.free) == 0 || len(k.free) > 2 {
		t.Fatalf("free list holds %d events, want the one-or-two in flight", len(k.free))
	}

	allocs := testing.AllocsPerRun(100, func() {
		done := false
		k.Call("probe", k.Now(), func() { done = true })
		k.Run()
		if !done {
			t.Fatal("probe did not fire")
		}
	})
	// One closure allocation per run is inherent to the test harness; the
	// event itself must come from the pool.
	if allocs > 2 {
		t.Fatalf("Call+Run allocates %.1f objects/op, want <= 2", allocs)
	}
}

// Heavy Deschedule/Reschedule churn leaves tombstones behind; the queue must
// keep executing the *current* schedule of every event, in order, and the
// far heap must compact rather than grow without bound.
func TestQueueRescheduleChurn(t *testing.T) {
	k := NewKernel()
	rng := rand.New(rand.NewSource(7))
	const n = 200
	events := make([]*Event, n)
	when := make([]Tick, n)
	var got []int
	for i := range events {
		i := i
		events[i] = NewEvent("e", func() { got = append(got, i) })
		when[i] = Tick(rng.Int63n(int64(2 * Microsecond)))
		k.Schedule(events[i], when[i])
	}
	// Churn: move half of them around several times.
	for round := 0; round < 5; round++ {
		for i := 0; i < n; i += 2 {
			when[i] = Tick(rng.Int63n(int64(2 * Microsecond)))
			k.Reschedule(events[i], when[i])
		}
	}
	if k.Pending() != n {
		t.Fatalf("Pending = %d, want %d", k.Pending(), n)
	}
	k.Run()
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	// Verify execution respected final (when, seq) order.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if when[idx[a]] != when[idx[b]] {
			return when[idx[a]] < when[idx[b]]
		}
		return events[idx[a]].seq < events[idx[b]].seq
	})
	for i := range got {
		if got[i] != idx[i] {
			t.Fatalf("execution order diverged at %d: got %d, want %d", i, got[i], idx[i])
		}
	}
}

// Descheduling a far event then draining must not wedge the cursor jump on a
// heap whose top is a tombstone.
func TestQueueFarTombstoneTop(t *testing.T) {
	k := NewKernel()
	far1 := NewEvent("far1", func() {})
	fired := false
	far2 := NewEvent("far2", func() { fired = true })
	k.Schedule(far1, Second)
	k.Schedule(far2, 2*Second)
	k.Deschedule(far1)
	k.Run()
	if !fired || k.Pending() != 0 {
		t.Fatalf("fired=%v pending=%d", fired, k.Pending())
	}
}

// Same-tick scheduling during execution must respect the consumed prefix of
// the sorted cursor bucket: a MinPriority event scheduled "now" from inside
// a callback still runs after the callback that scheduled it.
func TestQueueSameTickInsertAfterConsumed(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Schedule(NewEvent("a", func() {
		order = append(order, "a")
		k.Schedule(NewEventPri("injected", MinPriority, func() {
			order = append(order, "injected")
		}), k.Now())
	}), 10*Nanosecond)
	k.Schedule(NewEventPri("b", MaxPriority, func() { order = append(order, "b") }), 10*Nanosecond)
	k.Run()
	want := []string{"a", "injected", "b"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
