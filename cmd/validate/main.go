// Command validate runs a reduced version of every paper experiment and
// checks the result against the expected qualitative bands, printing a
// pass/fail table — the one-command artefact-evaluation entry point.
//
//	go run ./cmd/validate          # ~a minute
//	go run ./cmd/validate -full    # full-size experiments
//	go run ./cmd/validate -faults  # fault-injection / RAS checks only
//	go run ./cmd/validate -trace run.json        # + observability self-check
//	go run ./cmd/validate -trace-check run.json  # validate an existing trace
//	go run ./cmd/validate -standard ddr5         # one standard's protocol smoke
//	go run ./cmd/validate -standard all          # every supported standard
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trafficgen"
)

// check is one named assertion about an experiment outcome.
type check struct {
	name   string
	detail string
	pass   bool
}

func main() {
	full := flag.Bool("full", false, "run full-size experiments (slower)")
	faultsOnly := flag.Bool("faults", false, "run only the fault-injection / RAS checks")
	traceOut := flag.String("trace", "", "also run the observability self-check, writing its Perfetto trace here")
	traceCheck := flag.String("trace-check", "", "validate an existing Chrome trace file and exit")
	standard := flag.String("standard", "", "run only the protocol smoke for one memory standard keyword, or \"all\"")
	flag.Parse()

	if *traceCheck != "" {
		sum, err := obs.ValidateTraceStrict(*traceCheck)
		if err != nil {
			fmt.Fprintln(os.Stderr, "validate:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid Chrome trace JSON: %d events, %d lifecycle spans (%d open), "+
			"%d bursts, %d activates, %d refreshes, %d power spans, processes %v\n",
			*traceCheck, sum.Events, sum.SpanBegins, sum.OpenSpans(),
			sum.Bursts, sum.Activates, sum.Refreshes, sum.PowerSpans, sum.Processes)
		return
	}

	sweepReq, latReq, powerReq, speedReq := uint64(1500), uint64(6000), uint64(1500), uint64(20000)
	memOps := uint64(1000)
	cores := 8
	if *full {
		sweepReq, latReq, powerReq, speedReq = 4000, 20000, 5000, 100000
		memOps = 5000
		cores = 16
	}

	var checks []check
	add := func(name string, pass bool, detail string, args ...any) {
		checks = append(checks, check{name: name, pass: pass, detail: fmt.Sprintf(detail, args...)})
	}

	if *standard != "" {
		standardChecks(add, *standard, memOps)
		report(checks)
		return
	}

	if *faultsOnly {
		faultChecks(add, memOps)
		if *traceOut != "" {
			traceChecks(add, *traceOut, memOps)
		}
		report(checks)
		return
	}

	// Figure 3: open-page reads reach ~90%+, models agree.
	f3 := experiments.Fig3Spec(sweepReq)
	f3.Strides = []uint64{1, 16, 128}
	f3.Banks = []int{1, 8}
	if res, err := experiments.RunSweep(f3); err == nil {
		rows := res.RowsForBanks(8)
		last := rows[len(rows)-1]
		add("Fig3 peak utilisation", last.EventUtil > 0.85, "event %.3f at full stride", last.EventUtil)
		maxDiff := 0.0
		for _, r := range res.Rows {
			if d := abs(r.EventUtil - r.CycleUtil); d > maxDiff {
				maxDiff = d
			}
		}
		add("Fig3 model agreement", maxDiff < 0.15, "max divergence %.3f", maxDiff)
	} else {
		add("Fig3", false, "error: %v", err)
	}

	// Figure 5: closed-page writes fall with stride.
	f5 := experiments.Fig5Spec(sweepReq)
	f5.Strides = []uint64{1, 128}
	f5.Banks = []int{8}
	if res, err := experiments.RunSweep(f5); err == nil {
		rows := res.RowsForBanks(8)
		add("Fig5 stride pathology", rows[1].EventUtil < rows[0].EventUtil,
			"util %.3f -> %.3f as stride grows", rows[0].EventUtil, rows[1].EventUtil)
	} else {
		add("Fig5", false, "error: %v", err)
	}

	// Figure 6: latency means within 15%.
	if res, err := experiments.RunLatency(experiments.Fig6Spec(latReq)); err == nil {
		ratio := res.Event.MeanNs / res.Cycle.MeanNs
		add("Fig6 latency correlation", ratio > 0.85 && ratio < 1.15,
			"mean ratio %.3f (ev %.1f / cy %.1f ns)", ratio, res.Event.MeanNs, res.Cycle.MeanNs)
	} else {
		add("Fig6", false, "error: %v", err)
	}

	// Figure 7: event model bimodal, baseline not.
	if res, err := experiments.RunLatency(experiments.Fig7Spec(latReq)); err == nil {
		add("Fig7 bimodality", res.Event.Bimodal(50) && !res.Cycle.Bimodal(50),
			"event modes %v, cycle modes %v",
			res.Event.CoarseModes(25, 0.05), res.Cycle.CoarseModes(25, 0.05))
	} else {
		add("Fig7", false, "error: %v", err)
	}

	// §III-C3: power within 25% max (paper 8%).
	if res, err := experiments.RunPowerComparison(powerReq); err == nil {
		add("Power comparison", res.AvgDiffPct < 10 && res.MaxDiffPct < 25,
			"avg %.1f%%, max %.1f%% (paper: 3%%/8%%)", res.AvgDiffPct, res.MaxDiffPct)
	} else {
		add("Power", false, "error: %v", err)
	}

	// §III-D: event model faster on average, and fastest on the HMC case.
	if res, err := experiments.RunSpeedup(speedReq); err == nil {
		add("Speedup", res.AvgSpeedup > 1.5,
			"avg %.2fx, max %.2fx (paper: 7x/10x vs DRAMSim2)", res.AvgSpeedup, res.MaxSpeedup)
	} else {
		add("Speedup", false, "error: %v", err)
	}

	// Figure 8: cache-friendly ratios near 1, event model faster overall.
	if res, err := experiments.RunFig8(memOps); err == nil {
		ok := res.AvgSimTimeReduction > 0
		for _, row := range res.Rows {
			if row.Workload == "blackscholes" && (row.IPCRatio < 0.9 || row.IPCRatio > 1.1) {
				ok = false
			}
		}
		add("Fig8 full system", ok, "sim time reduction %.0f%% (paper: 13%%)",
			res.AvgSimTimeReduction*100)
	} else {
		add("Fig8", false, "error: %v", err)
	}

	// Figure 9: three technologies run; LPDDR3's chopped fills hit rows.
	if res, err := experiments.RunFig9(memOps, cores); err == nil {
		var lp experiments.Fig9Row
		for _, row := range res.Rows {
			if row.Name == "LPDDR3" {
				lp = row
			}
		}
		add("Fig9 exploration", lp.RowHitRate > 0.45 && lp.RowHitRate < 0.55,
			"LPDDR3 row-hit rate %.3f (paper effect: exactly 0.5 from 2-burst fills)", lp.RowHitRate)
	} else {
		add("Fig9", false, "error: %v", err)
	}

	faultChecks(add, memOps)
	if *traceOut != "" {
		traceChecks(add, *traceOut, memOps)
	}
	report(checks)
}

// standardChecks runs the multi-standard protocol smoke: each requested
// family's representative preset drives a short random run with the command
// stream recorded, and the device-aware protocol checker must find the
// stream clean — including the standard's own rules (bank-group spacings,
// same-bank refresh blackout, all-bank precharge time).
func standardChecks(add func(string, bool, string, ...any), std string, requests uint64) {
	stds := []string{std}
	if std == "all" {
		stds = dram.Standards()
	}
	for _, s := range stds {
		spec, err := dram.ByStandard(s)
		if err != nil {
			add("Standard "+s, false, "error: %v", err)
			continue
		}
		trace, bw, err := runStandardSmoke(spec, requests)
		if err != nil {
			add("Standard "+s, false, "error: %v", err)
			continue
		}
		vs := power.CheckTiming(spec, trace.Commands())
		detail := fmt.Sprintf("%s: %d commands protocol clean, %.2f GB/s", spec.Name, trace.Len(), bw/1e9)
		if len(vs) > 0 {
			detail = fmt.Sprintf("%s: %d violations, first: %s", spec.Name, len(vs), vs[0])
		}
		add("Standard "+s, len(vs) == 0 && bw > 0, "%s", detail)
		if spec.Refresh == dram.RefSameBank {
			refsb := 0
			for _, c := range trace.Commands() {
				if c.Kind == power.CmdREFSB {
					refsb++
				}
			}
			add("Standard "+s+" REFsb", refsb > 0, "%d same-bank refreshes in the trace", refsb)
		}
	}
}

// runStandardSmoke drives a short random-traffic run against the spec with
// the command probe attached and returns the recorded command trace and the
// achieved bandwidth.
func runStandardSmoke(spec dram.Spec, requests uint64) (*power.CommandTrace, float64, error) {
	var trace power.CommandTrace
	hub := obs.NewHub()
	hub.Attach(obs.CommandFunc(trace.Record))

	k := sim.NewKernel()
	reg := stats.NewRegistry("validate")
	cfg := core.DefaultConfig(spec)
	cfg.Probes = hub
	ctrl, err := core.NewController(k, cfg, reg, "mc")
	if err != nil {
		return nil, 0, err
	}
	gen, err := trafficgen.New(k, trafficgen.Config{
		RequestBytes:   64,
		MaxOutstanding: 32,
		Count:          requests,
	}, &trafficgen.Random{
		Start: 0, End: 1 << 26, Align: 64, ReadPercent: 67, Seed: 7,
	}, reg, "gen")
	if err != nil {
		return nil, 0, err
	}
	mem.Connect(gen.Port(), ctrl.Port())
	gen.Start()
	for k.Now() < 100*sim.Second {
		if _, err := k.RunUntilErr(k.Now() + 10*sim.Microsecond); err != nil {
			return nil, 0, err
		}
		if gen.Done() {
			if !ctrl.Quiescent() {
				ctrl.Drain()
				continue
			}
			break
		}
	}
	if !gen.Done() {
		return nil, 0, fmt.Errorf("%s smoke did not complete by %s", spec.Name, k.Now())
	}
	return &trace, ctrl.Bandwidth(), nil
}

// traceChecks runs the observability self-check: a small traced run through
// the event-based controller, then the written Chrome trace is re-read,
// structurally validated, and its event counts reconciled against the
// controller's own aggregate statistics — the trace must tell the same
// story as the counters it is meant to explain.
func traceChecks(add func(string, bool, string, ...any), path string, requests uint64) {
	act, err := runTraced(path, requests)
	if err != nil {
		add("Trace self-check", false, "error: %v", err)
		return
	}
	sum, err := obs.ValidateTraceStrict(path)
	if err != nil {
		add("Trace validity", false, "error: %v", err)
		return
	}
	add("Trace validity", sum.Terminated, "%s: %d events, valid Chrome trace JSON", path, sum.Events)
	add("Trace spans balanced", sum.OpenSpans() == 0,
		"%d lifecycle begins, %d ends (%d open)", sum.SpanBegins, sum.SpanEnds, sum.OpenSpans())
	add("Trace/stats bursts", uint64(sum.Bursts) == act.ReadBursts+act.WriteBursts,
		"trace %d bursts vs controller %d+%d", sum.Bursts, act.ReadBursts, act.WriteBursts)
	add("Trace/stats activates", uint64(sum.Activates) == act.Activations,
		"trace %d ACTs vs controller %d", sum.Activates, act.Activations)
	add("Trace/stats refreshes", uint64(sum.Refreshes) == act.Refreshes,
		"trace %d REFs vs controller %d", sum.Refreshes, act.Refreshes)
	// Power-state residency must reconcile exactly: the traced PD/SR span
	// durations (fixed-point timestamps invert back to ticks) equal the
	// controller's per-rank residency counters. WakeAllRanks closed every
	// interval before the snapshot, so there is no open-interval slack.
	var pdSum, srSum sim.Tick
	for _, d := range act.PrePDTime {
		pdSum += d
	}
	for _, d := range act.ActPDTime {
		pdSum += d
	}
	for _, d := range act.SRTime {
		srSum += d
	}
	add("Trace/stats power residency",
		sum.PowerSpans > 0 && sum.PDTicks == int64(pdSum) && sum.SRTicks == int64(srSum),
		"trace %d spans, PD %d ticks vs controller %d, SR %d vs %d",
		sum.PowerSpans, sum.PDTicks, int64(pdSum), sum.SRTicks, int64(srSum))
}

// runTraced drives a short random-traffic run with the packet-lifecycle
// tracer attached and returns the controller's aggregate activity counts.
func runTraced(path string, requests uint64) (power.Activity, error) {
	spec := dram.DDR3_1600_x64()
	tw, err := obs.NewTraceWriter(path)
	if err != nil {
		return power.Activity{}, err
	}
	if err := tw.BeginFresh(); err != nil {
		return power.Activity{}, err
	}
	tracer := obs.NewTracer(0)
	hub := obs.NewHub()
	hub.Attach(tracer)
	sink := obs.NewTraceSink(tw, tracer)

	k := sim.NewKernel()
	reg := stats.NewRegistry("validate")
	cfg := core.DefaultConfig(spec)
	cfg.Probes = hub
	// Low-power states on and bursty traffic, so the trace carries PD/SR
	// spans for the residency reconciliation check.
	cfg.PowerDownIdle = 300 * sim.Nanosecond
	cfg.SelfRefreshIdle = 2 * sim.Microsecond
	ctrl, err := core.NewController(k, cfg, reg, "mc")
	if err != nil {
		return power.Activity{}, err
	}
	gen, err := trafficgen.New(k, trafficgen.Config{
		RequestBytes:   64,
		MaxOutstanding: 32,
		Count:          requests,
	}, &trafficgen.Bursty{
		Start: 0, End: 1 << 28, Align: 64, ReadPercent: 67, Seed: 1,
		BurstLen: 16, OffTime: 5 * sim.Microsecond,
	}, reg, "gen")
	if err != nil {
		return power.Activity{}, err
	}
	mem.Connect(gen.Port(), ctrl.Port())
	gen.Start()
	for k.Now() < 100*sim.Second {
		if _, err := k.RunUntilErr(k.Now() + 10*sim.Microsecond); err != nil {
			return power.Activity{}, err
		}
		if gen.Done() {
			if !ctrl.Quiescent() {
				ctrl.Drain()
				continue
			}
			break
		}
	}
	if !gen.Done() {
		return power.Activity{}, fmt.Errorf("traced run did not complete by %s", k.Now())
	}
	// Close any open low-power interval so trace spans and residency
	// counters cover identical time.
	ctrl.WakeAllRanks()
	if err := sink.Close(); err != nil {
		return power.Activity{}, err
	}
	return ctrl.PowerStats(), nil
}

// faultChecks validates the reliability extension: a seeded fault sweep is
// bit-for-bit reproducible, a zero error rate injects nothing, higher rates
// produce more corrections, and uncorrectable errors complete gracefully
// (poisoned responses) rather than crashing the run.
func faultChecks(add func(string, bool, string, ...any), requests uint64) {
	spec := experiments.DefaultFaultSweep(requests)
	a, err := experiments.RunFaultSweep(spec)
	if err != nil {
		add("Fault sweep", false, "error: %v", err)
		return
	}
	b, err := experiments.RunFaultSweep(spec)
	if err != nil {
		add("Fault sweep rerun", false, "error: %v", err)
		return
	}
	identical := len(a.Rows) == len(b.Rows)
	for i := range a.Rows {
		if !identical || a.Rows[i] != b.Rows[i] {
			identical = false
			break
		}
	}
	add("Fault determinism", identical,
		"two seed-%d sweeps produced identical corrected/uncorrected/retried/retired counts", spec.Seed)

	zero := a.Rows[0]
	add("Fault zero-rate baseline", zero.BER == 0 &&
		zero.Corrected+zero.Uncorrected+zero.Retried+zero.Retired+zero.Scrubs == 0,
		"BER 0 row: %d corrected, %d uncorrected, %d scrubs", zero.Corrected, zero.Uncorrected, zero.Scrubs)

	hot := a.Rows[len(a.Rows)-1]
	monotone := hot.Corrected > zero.Corrected && hot.Corrected > 0 && hot.Scrubs > 0
	for i := 1; i < len(a.Rows); i++ {
		if a.Rows[i].Corrected < a.Rows[i-1].Corrected {
			monotone = false
		}
	}
	add("Fault rate scaling", monotone,
		"corrected errors grow with BER: %d at %g -> %d at %g",
		a.Rows[1].Corrected, a.Rows[1].BER, hot.Corrected, hot.BER)

	add("Graceful uncorrectable", hot.Uncorrected > 0,
		"%d uncorrectable errors completed as poisoned responses, no crash", hot.Uncorrected)
}

// report prints the pass/fail table and exits non-zero on failure.
func report(checks []check) {
	fmt.Println("paper validation summary:")
	fmt.Println()
	failed := 0
	for _, c := range checks {
		status := "PASS"
		if !c.pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("  [%s] %-24s %s\n", status, c.name, c.detail)
	}
	fmt.Println()
	if failed > 0 {
		fmt.Printf("%d of %d checks failed\n", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("all %d checks passed\n", len(checks))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
