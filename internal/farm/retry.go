package farm

import (
	"time"

	"repro/internal/supervisor"
)

// RetryPolicy bounds and paces point re-runs. The schedule is fully
// deterministic: delays come from supervisor.Backoff, a pure function of
// (seed, point key, attempt) — no wall clock, no global rand.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per point (minimum 1).
	MaxAttempts int
	// Backoff paces attempts 2..MaxAttempts; the zero value retries
	// immediately.
	Backoff supervisor.Backoff
}

// Attempts returns the effective attempt budget.
func (r RetryPolicy) Attempts() int {
	if r.MaxAttempts < 1 {
		return 1
	}
	return r.MaxAttempts
}

// Delay returns the pause before running attempt n (1-based) of the point
// identified by key. The first attempt never waits.
func (r RetryPolicy) Delay(key string, attempt int) time.Duration {
	if attempt <= 1 {
		return 0
	}
	return r.Backoff.Delay(key, attempt-1)
}
