package core

import (
	"repro/internal/faults"
	"repro/internal/sim"
)

// This file is the controller's RAS (reliability, availability,
// serviceability) path — the extension that lets the model both *inject*
// DRAM faults and *survive* them, in the spirit of ECC DIMMs with SEC-DED
// (72,64), patrol/demand scrubbing, and DDR4 command/address-parity retry:
//
//   - a correctable (single-bit) error is fixed in-line: the burst pays the
//     ECC correction latency and a demand-scrub writeback of the corrected
//     data is queued, so the error does not linger in the array;
//   - an uncorrectable (multi-bit) error poisons the response; the poison
//     flag travels intact through the crossbar and caches to the requester
//     (see mem.Packet.Poisoned) — graceful reporting, never a crash;
//   - a transient whole-burst failure is replayed with exponential backoff
//     in tBURST slots; once the retry limit is exhausted the row is retired
//     (remapped to a spare) and the access completes from the spare.
//
// Everything here is driven by the deterministic injector in
// internal/faults, so identical seeds reproduce identical fault histories.

// inspectReadBurst runs the ECC/fault logic over a just-issued read burst.
// It returns true when the burst failed transiently and was scheduled for
// replay — in that case the caller must not advance the parent transaction.
// The caller guarantees c.inj != nil.
func (c *Controller) inspectReadBurst(dp *dramPacket) (replay bool) {
	dp.attempts++
	switch c.inj.OnReadBurst(dp.coord.Rank, dp.coord.Bank, dp.coord.Row) {
	case faults.OK:
		return false
	case faults.Correctable:
		// SEC-DED fixes the word in-line; the response is delayed by the
		// correction and the corrected data is written back (demand scrub).
		c.st.correctedErrors.Inc()
		dp.readyTime += c.cfg.ECCCorrectionLatency
		c.queueScrub(dp)
		return false
	case faults.Uncorrectable:
		// Detectable but unfixable: complete the access with poison so the
		// requester can contain the damage (machine-check style).
		c.st.uncorrectedErrors.Inc()
		if dp.parent != nil {
			dp.parent.poisoned = true
		}
		return false
	case faults.Transient:
		return c.replayBurst(dp)
	}
	return false
}

// replayBurst re-queues a transiently failed read burst after an exponential
// backoff measured in tBURST slots (1, 2, 4, ... bursts), or — once the
// retry limit is exhausted — retires the row and lets the access complete
// from the remapped spare. It returns true when a replay was scheduled.
func (c *Controller) replayBurst(dp *dramPacket) bool {
	if dp.attempts > c.cfg.FaultRetryLimit {
		// Persistent failure: retire (remap) the row. The injector stops
		// faulting it, so this final access is served by the spare row.
		if c.inj.RetireRow(dp.coord.Rank, dp.coord.Bank, dp.coord.Row) {
			c.st.retiredRows.Inc()
		}
		return false
	}
	c.st.retriedBursts.Inc()
	backoff := c.tim.TBURST << uint(dp.attempts-1)
	retryAt := dp.readyTime + backoff
	// A pooled one-shot event re-queues the burst (replay storms must not
	// churn the allocator); its read-buffer entry stays reserved the whole
	// time, so back pressure is preserved.
	c.armReplay(dp, retryAt)
	return true
}

// armReplay schedules the one-shot replay of dp at retryAt and tracks it in
// pendingReplays so checkpoints can capture — and restores re-create — the
// in-flight backoff.
func (c *Controller) armReplay(dp *dramPacket, retryAt sim.Tick) {
	// Replays only arm when ECC actually corrects or a retry fires — a fault
	// path, not the steady-state cycle the zero-alloc gate covers.
	//lint:allow hotalloc replay records allocate on the fault path only, not in steady state
	rec := &replayRecord{dp: dp, when: retryAt}
	//lint:allow hotalloc fault-path bookkeeping; pendingReplays is empty in fault-free runs
	c.pendingReplays = append(c.pendingReplays, rec)
	// The seq is recorded only so CheckpointSave can reproduce same-tick
	// ordering on restore; nothing ever touches the pooled event through it.
	//lint:allow eventpool seq saved for checkpoint replay ordering, never used to reach the event
	rec.seq = c.k.Call(c.replayName, retryAt, func() { //lint:allow hotalloc the replay closure allocates on the fault path only
		c.dropReplay(rec)
		c.readQueue = append(c.readQueue, dp)
		c.kickScheduler()
	})
}

// dropReplay removes a fired replay record.
func (c *Controller) dropReplay(rec *replayRecord) {
	for i, r := range c.pendingReplays {
		if r == rec {
			c.pendingReplays = append(c.pendingReplays[:i], c.pendingReplays[i+1:]...)
			return
		}
	}
}

// queueScrub enqueues a full-burst demand-scrub writeback of corrected data.
// Scrubs ride the ordinary write queue and write path, so they obey every
// timing constraint (including refresh: a bank under refresh blocks the
// scrub via actAllowedAt exactly like any other write). Under pressure the
// scrub is dropped rather than deadlocking the queue — patrol scrubbing
// would catch the row again later.
func (c *Controller) queueScrub(dp *dramPacket) {
	if len(c.writeQueue) >= c.cfg.WriteBufferSize {
		c.st.droppedScrubs.Inc()
		return
	}
	w := c.newDP()
	*w = dramPacket{
		isRead:    false,
		coord:     dp.coord,
		burstAddr: dp.burstAddr,
		addr:      dp.burstAddr,
		size:      c.org.BurstBytes(),
		priority:  dp.priority,
		entryTime: c.k.Now(),
		scrub:     true,
	}
	c.wakeRank(w.coord.Rank)
	//lint:allow hotalloc scrub writes enqueue on the fault path only
	c.writeQueue = append(c.writeQueue, w)
	c.inWriteQueue[w.burstAddr]++
	c.st.scrubWrites.Inc()
}
