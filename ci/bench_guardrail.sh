#!/usr/bin/env bash
# Bench guardrail: the sharded rig's parallel scaling must not silently rot.
# Reruns the parallel speedup measurement with GOMAXPROCS pinned above 1 (so
# the sharded path really runs multi-threaded) and compares every
# (case, channels, workers) row against the committed BENCH_3.json baseline:
#
#   - determinism (parallel stats byte-match serial) is enforced always —
#     cmd/speedup itself exits nonzero on a diverged row, and benchcmp
#     re-checks both reports' flags;
#   - the scaling comparison (speedup within 25% of baseline) is skipped for
#     rows undersubscribed in either run, because a host with fewer hardware
#     threads than workers measures goroutine overhead, not scaling.
set -euo pipefail
cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

: "${BENCH_GOMAXPROCS:=4}"
if [ "$BENCH_GOMAXPROCS" -le 1 ]; then
    echo "FAIL: BENCH_GOMAXPROCS must be > 1 (the guardrail exists to exercise the multi-threaded path)" >&2
    exit 1
fi

# Must match the flags BENCH_3.json was generated with (see README): the
# comparator rejects mismatched adaptive quanta.
echo "== regenerate parallel measurement (GOMAXPROCS=$BENCH_GOMAXPROCS)"
GOMAXPROCS="$BENCH_GOMAXPROCS" go run ./cmd/speedup \
    -requests 20000 -parallel 4 -lookahead-quanta 8 \
    -json "$workdir/bench.json" >"$workdir/bench.out"
tail -n +1 "$workdir/bench.out" | sed -n '/Sharded multi-channel rig/,$p'

echo "== compare against committed BENCH_3.json"
go run ./ci/benchcmp BENCH_3.json "$workdir/bench.json"

echo "PASS: bench guardrail"
