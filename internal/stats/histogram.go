package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates samples into fixed-width buckets over [Min, Max);
// samples outside the range land in underflow/overflow buckets. It also
// tracks exact sum/min/max so means and percentiles-of-record survive
// whatever bucketing is chosen. This is what the latency-distribution
// figures (Figs. 6 and 7) are produced from.
type Histogram struct {
	name, desc string
	min, max   float64
	buckets    []uint64
	width      float64
	underflow  uint64
	overflow   uint64
	count      uint64
	sum        float64
	sumSq      float64
	sampleMin  float64
	sampleMax  float64
}

// NewHistogram registers a histogram with n equal buckets spanning [min, max).
func (r *Registry) NewHistogram(name, desc string, min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic(fmt.Sprintf("stats: bad histogram shape [%g,%g)/%d", min, max, n))
	}
	h := &Histogram{
		name: r.join(name), desc: desc,
		min: min, max: max,
		buckets: make([]uint64, n),
		width:   (max - min) / float64(n),
	}
	h.Reset()
	r.add(h)
	return h
}

// Name implements Stat.
func (h *Histogram) Name() string { return h.name }

// Desc implements Stat.
func (h *Histogram) Desc() string { return h.desc }

// Reset implements Stat.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.underflow, h.overflow, h.count = 0, 0, 0
	h.sum, h.sumSq = 0, 0
	h.sampleMin, h.sampleMax = math.Inf(1), math.Inf(-1)
}

// Sample records one observation.
func (h *Histogram) Sample(v float64) {
	h.count++
	h.sum += v
	h.sumSq += v * v
	if v < h.sampleMin {
		h.sampleMin = v
	}
	if v > h.sampleMax {
		h.sampleMax = v
	}
	switch {
	case v < h.min:
		h.underflow++
	case v >= h.max:
		h.overflow++
	default:
		h.buckets[int((v-h.min)/h.width)]++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// StdDev returns the population standard deviation of the samples.
func (h *Histogram) StdDev() float64 {
	if h.count == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sumSq/float64(h.count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observed sample (+Inf with no samples).
func (h *Histogram) Min() float64 { return h.sampleMin }

// Max returns the largest observed sample (-Inf with no samples).
func (h *Histogram) Max() float64 { return h.sampleMax }

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// BucketBounds returns the [lo, hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	lo = h.min + float64(i)*h.width
	return lo, lo + h.width
}

// Percentile returns an estimate of the p-th percentile (0 < p <= 100) from
// the bucketed data, using linear interpolation within the bucket.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := p / 100 * float64(h.count)
	seen := float64(h.underflow)
	if seen >= target {
		return h.min
	}
	for i, c := range h.buckets {
		if seen+float64(c) >= target && c > 0 {
			lo, _ := h.BucketBounds(i)
			frac := (target - seen) / float64(c)
			return lo + frac*h.width
		}
		seen += float64(c)
	}
	return h.max
}

// Modes returns the indices of local-maximum buckets with at least minShare
// (0..1) of all samples. Two well-separated modes is how the paper describes
// the bimodal read-latency distribution of the write-drain policy (Fig. 7).
func (h *Histogram) Modes(minShare float64) []int {
	var modes []int
	if h.count == 0 {
		return modes
	}
	thresh := minShare * float64(h.count)
	for i, c := range h.buckets {
		if float64(c) < thresh {
			continue
		}
		left := uint64(0)
		if i > 0 {
			left = h.buckets[i-1]
		}
		right := uint64(0)
		if i < len(h.buckets)-1 {
			right = h.buckets[i+1]
		}
		if c >= left && c >= right && (c > left || c > right) {
			modes = append(modes, i)
		}
	}
	return modes
}

// Rows implements Stat: summary rows plus the non-empty buckets.
func (h *Histogram) Rows() []Row {
	rows := []Row{
		{h.name + ".samples", formatNumber(float64(h.count)), h.desc + " (count)"},
		{h.name + ".mean", formatNumber(h.Mean()), h.desc + " (mean)"},
	}
	if h.underflow > 0 {
		rows = append(rows, Row{h.name + ".underflow", formatNumber(float64(h.underflow)), "samples below range"})
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo, hi := h.BucketBounds(i)
		rows = append(rows, Row{
			fmt.Sprintf("%s[%g,%g)", h.name, lo, hi),
			formatNumber(float64(c)),
			"bucket count",
		})
	}
	if h.overflow > 0 {
		rows = append(rows, Row{h.name + ".overflow", formatNumber(float64(h.overflow)), "samples above range"})
	}
	return rows
}

// Distribution is an exact-value distribution for small discrete domains
// (e.g. bytes-per-activate, queue depths): it keeps a map of value counts.
type Distribution struct {
	name, desc string
	counts     map[int64]uint64
	total      uint64
}

// NewDistribution registers an exact discrete distribution.
func (r *Registry) NewDistribution(name, desc string) *Distribution {
	d := &Distribution{name: r.join(name), desc: desc, counts: make(map[int64]uint64)}
	r.add(d)
	return d
}

// Name implements Stat.
func (d *Distribution) Name() string { return d.name }

// Desc implements Stat.
func (d *Distribution) Desc() string { return d.desc }

// Reset implements Stat.
func (d *Distribution) Reset() {
	d.counts = make(map[int64]uint64)
	d.total = 0
}

// Sample records one observation of value v.
func (d *Distribution) Sample(v int64) {
	d.counts[v]++
	d.total++
}

// Count returns the total number of observations.
func (d *Distribution) Count() uint64 { return d.total }

// CountOf returns how often v was observed.
func (d *Distribution) CountOf(v int64) uint64 { return d.counts[v] }

// Mean returns the sample mean. Accumulation runs over sorted values: float
// addition is not associative, so folding in map order would make the mean —
// and every report containing it — differ between identical runs.
func (d *Distribution) Mean() float64 {
	if d.total == 0 {
		return 0
	}
	keys := make([]int64, 0, len(d.counts))
	for v := range d.counts {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var sum float64
	for _, v := range keys {
		sum += float64(v) * float64(d.counts[v])
	}
	return sum / float64(d.total)
}

// Rows implements Stat, sorted by value for deterministic dumps.
func (d *Distribution) Rows() []Row {
	keys := make([]int64, 0, len(d.counts))
	for v := range d.counts {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	rows := []Row{{d.name + ".samples", formatNumber(float64(d.total)), d.desc + " (count)"}}
	for _, v := range keys {
		rows = append(rows, Row{
			fmt.Sprintf("%s[%d]", d.name, v),
			formatNumber(float64(d.counts[v])),
			"value count",
		})
	}
	return rows
}
