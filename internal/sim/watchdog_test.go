package sim

import (
	"errors"
	"strings"
	"testing"
)

// A deliberately self-deadlocking harness: two events endlessly retry each
// other at the same tick, the DES signature of a protocol deadlock. The
// watchdog must catch it, with a queue dump, instead of hanging.
func TestWatchdogCatchesLivelock(t *testing.T) {
	k := NewKernel()
	var a, b *Event
	a = NewEvent("ping", func() { k.Schedule(b, k.Now()) })
	b = NewEvent("pong", func() { k.Schedule(a, k.Now()) })
	k.Schedule(a, 10*Nanosecond)
	k.SetWatchdog(Watchdog{MaxSameTick: 1000})

	_, err := k.RunErr()
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("RunErr = %v, want *WatchdogError", err)
	}
	if we.Now != 10*Nanosecond {
		t.Fatalf("trip at %s, want 10ns", we.Now)
	}
	if we.SameTick < 1000 {
		t.Fatalf("same-tick count = %d", we.SameTick)
	}
	if len(we.Pending) != 1 {
		t.Fatalf("pending = %v", we.Pending)
	}
	msg := err.Error()
	for _, want := range []string{"livelock", "10ns", "ping", "pending"} {
		if !strings.Contains(msg, want) && !strings.Contains(msg, "pong") {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestWatchdogMaxEvents(t *testing.T) {
	k := NewKernel()
	var tick *Event
	n := 0
	tick = NewEvent("tick", func() {
		n++
		k.Schedule(tick, k.Now()+Nanosecond)
	})
	k.Schedule(tick, 0)
	k.SetWatchdog(Watchdog{MaxEvents: 50})
	_, err := k.RunErr()
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("RunErr = %v, want *WatchdogError", err)
	}
	if we.Executed != 50 || n != 50 {
		t.Fatalf("executed = %d (fired %d), want 50", we.Executed, n)
	}
	if !strings.Contains(err.Error(), "event limit 50") {
		t.Fatalf("error %q missing reason", err.Error())
	}
}

// RunUntilErr honours the watchdog too, and the panicking Run wrapper
// carries the dump in its message.
func TestWatchdogRunUntilAndPanicPath(t *testing.T) {
	k := NewKernel()
	var spin *Event
	spin = NewEvent("spin", func() { k.Schedule(spin, k.Now()) })
	k.Schedule(spin, 0)
	k.SetWatchdog(Watchdog{MaxSameTick: 100})
	if _, err := k.RunUntilErr(Second); err == nil {
		t.Fatal("RunUntilErr did not trip")
	}

	k2 := NewKernel()
	var spin2 *Event
	spin2 = NewEvent("spin2", func() { k2.Schedule(spin2, k2.Now()) })
	k2.Schedule(spin2, 0)
	k2.SetWatchdog(Watchdog{MaxSameTick: 100})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic on watchdog trip")
		}
		if !strings.Contains(r.(string), "spin2") {
			t.Fatalf("panic %q missing queue dump", r)
		}
	}()
	k2.Run()
}

// A healthy simulation with many same-tick events below the threshold is
// unaffected by the watchdog.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	k := NewKernel()
	k.SetWatchdog(Watchdog{MaxEvents: 10000, MaxSameTick: 100})
	fired := 0
	for i := 0; i < 50; i++ {
		k.Schedule(NewEvent("e", func() { fired++ }), Tick(i%5)*Nanosecond)
	}
	if _, err := k.RunErr(); err != nil {
		t.Fatalf("healthy run tripped: %v", err)
	}
	if fired != 50 {
		t.Fatalf("fired = %d", fired)
	}
	if (Watchdog{}).Enabled() {
		t.Fatal("zero watchdog enabled")
	}
	if !(Watchdog{MaxEvents: 1}).Enabled() {
		t.Fatal("watchdog with MaxEvents not enabled")
	}
}

// PendingEvents snapshots the queue in execution order.
func TestPendingEvents(t *testing.T) {
	k := NewKernel()
	k.Schedule(NewEvent("late", func() {}), 30*Nanosecond)
	k.Schedule(NewEvent("early", func() {}), 10*Nanosecond)
	k.Schedule(NewEventPri("first", MinPriority, func() {}), 10*Nanosecond)
	got := k.PendingEvents()
	want := []string{"first", "early", "late"}
	if len(got) != len(want) {
		t.Fatalf("pending = %v", got)
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Fatalf("pending[%d] = %q, want %q", i, got[i].Name, name)
		}
	}
}

// Tombstones left by Deschedule must not appear in diagnostics dumps.
func TestPendingEventsSkipsTombstones(t *testing.T) {
	k := NewKernel()
	dead := NewEvent("dead", func() {})
	k.Schedule(dead, 20*Nanosecond)
	k.Schedule(NewEvent("alive", func() {}), 10*Nanosecond)
	deadFar := NewEvent("deadFar", func() {})
	k.Schedule(deadFar, Second)
	k.Deschedule(dead)
	k.Deschedule(deadFar)
	got := k.PendingEvents()
	if len(got) != 1 || got[0].Name != "alive" {
		t.Fatalf("pending = %v, want just \"alive\"", got)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
}
