package experiments

import "testing"

// The fault sweep completes despite uncorrectable errors, is seed-stable,
// and its zero-rate point is fault-free.
func TestFaultSweep(t *testing.T) {
	spec := DefaultFaultSweep(300)
	spec.BERs = []float64{0, 5e-2}
	a, err := RunFaultSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	zero, hot := a.Rows[0], a.Rows[1]
	if zero.Corrected+zero.Uncorrected+zero.Retried+zero.Retired+zero.Scrubs != 0 {
		t.Fatalf("zero-rate point has faults: %+v", zero)
	}
	if hot.Corrected == 0 || hot.Scrubs == 0 {
		t.Fatalf("hot point saw no correctable errors: %+v", hot)
	}
	if hot.AvgReadNs <= zero.AvgReadNs {
		t.Fatalf("fault handling did not cost latency: %v <= %v", hot.AvgReadNs, zero.AvgReadNs)
	}
	b, err := RunFaultSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("sweep not reproducible at row %d: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
