package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Trace reading and validation: CI's smoke step, cmd/validate's
// -trace-check mode, and the reconciliation tests all parse traces back
// through this code, so "valid" means one thing everywhere.

// TraceEvent is one decoded trace line.
type TraceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   json.Number     `json:"ts"`
	Dur  json.Number     `json:"dur"`
	ID   uint64          `json:"id"`
	Args json.RawMessage `json:"args"`
}

// TraceSummary aggregates a parsed trace for reconciliation against
// stats.Registry counts.
type TraceSummary struct {
	Events     int // event lines, metadata included, terminator excluded
	SpanBegins int // packet-lifecycle "b" events
	SpanEnds   int // packet-lifecycle "e" events
	FirstCmds  int // "n" first-command markers
	Bursts     int // cat=burst "X" spans (RD+WR)
	ReadBursts int
	Activates  int // ACT instants
	Precharges int // PRE instants
	Refreshes  int // cat=refresh spans
	Refusals   int // cat=queue refuse instants
	Drains     int // write-drain episodes
	Quanta     int // shard quantum-flush markers
	PowerSpans int // cat=power spans (PD + SR intervals)
	// PDTicks and SRTicks total the power-down (both flavors) and
	// self-refresh span durations in kernel ticks, summed across ranks and
	// processes — reconciled against the controllers' residency counters.
	PDTicks    int64
	SRTicks    int64
	Processes  []string
	Terminated bool // the "{}]" terminator was present (clean Close)
}

// OpenSpans returns lifecycle spans begun but not ended — in-flight packets
// at end of trace.
func (s *TraceSummary) OpenSpans() int { return s.SpanBegins - s.SpanEnds }

// ReadTraceFile parses a trace file, validating each event line. It accepts
// a file without the closing terminator (a crashed run) and reports that
// via Terminated.
func ReadTraceFile(path string) (*TraceSummary, []TraceEvent, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return parseTrace(raw)
}

// parseTrace decodes the line-oriented JSON-array layout the TraceWriter
// produces.
func parseTrace(raw []byte) (*TraceSummary, []TraceEvent, error) {
	text := string(raw)
	if !strings.HasPrefix(text, traceHeader) {
		return nil, nil, fmt.Errorf("obs: trace does not start with the JSON array header")
	}
	body := text[len(traceHeader):]
	sum := &TraceSummary{}
	procs := map[int]string{}
	var events []TraceEvent
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSuffix(strings.TrimSpace(line), ",")
		if line == "" {
			continue
		}
		if line == "{}]" {
			sum.Terminated = true
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, nil, fmt.Errorf("obs: bad trace line %q: %w", line, err)
		}
		if err := checkEvent(ev); err != nil {
			return nil, nil, fmt.Errorf("obs: invalid trace event %q: %w", line, err)
		}
		sum.Events++
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			var args struct {
				Name string `json:"name"`
			}
			if json.Unmarshal(ev.Args, &args) == nil {
				procs[ev.Pid] = args.Name
			}
		case ev.Cat == "pkt" && ev.Ph == "b":
			sum.SpanBegins++
		case ev.Cat == "pkt" && ev.Ph == "e":
			sum.SpanEnds++
		case ev.Cat == "pkt" && ev.Ph == "n":
			sum.FirstCmds++
		case ev.Cat == "burst" && ev.Ph == "X":
			sum.Bursts++
			if ev.Name == "RD" {
				sum.ReadBursts++
			}
		case ev.Cat == "cmd" && ev.Name == "ACT":
			sum.Activates++
		case ev.Cat == "cmd" && ev.Name == "PRE":
			sum.Precharges++
		case ev.Cat == "refresh":
			sum.Refreshes++
		case ev.Cat == "power" && ev.Ph == "X":
			sum.PowerSpans++
			d, err := fixedTicks(ev.Dur)
			if err != nil {
				return nil, nil, fmt.Errorf("obs: bad power span duration %q: %w", ev.Dur, err)
			}
			if strings.HasPrefix(ev.Name, "PD") {
				sum.PDTicks += d
			} else {
				sum.SRTicks += d
			}
		case ev.Cat == "queue" && strings.HasPrefix(ev.Name, "refuse."):
			sum.Refusals++
		case ev.Cat == "drain":
			sum.Drains++
		case ev.Cat == "quantum":
			sum.Quanta++
		}
		events = append(events, ev)
	}
	for _, name := range procs {
		sum.Processes = append(sum.Processes, name)
	}
	sort.Strings(sum.Processes)
	return sum, events, nil
}

// fixedTicks inverts appendTS: "<µs>.<6-digit fraction>" back to kernel
// ticks. The trace's fixed-point formatting makes this exact, which is what
// lets residency reconciliation demand equality instead of tolerance.
func fixedTicks(n json.Number) (int64, error) {
	s := string(n)
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		whole, err := strconv.ParseInt(s, 10, 64)
		return whole * traceTimeDiv, err
	}
	whole, err := strconv.ParseInt(s[:dot], 10, 64)
	if err != nil {
		return 0, err
	}
	frac := s[dot+1:]
	if len(frac) != 6 {
		return 0, fmt.Errorf("want 6 fraction digits, got %q", frac)
	}
	f, err := strconv.ParseInt(frac, 10, 64)
	if err != nil {
		return 0, err
	}
	return whole*traceTimeDiv + f, nil
}

// checkEvent enforces the required keys per phase type.
func checkEvent(ev TraceEvent) error {
	if ev.Name == "" {
		return fmt.Errorf("missing name")
	}
	if ev.Ph == "" {
		return fmt.Errorf("missing ph")
	}
	if ev.Pid == 0 {
		return fmt.Errorf("missing pid")
	}
	if ev.Ph == "M" {
		return nil // metadata carries no timestamp
	}
	if ev.Ts == "" {
		return fmt.Errorf("missing ts")
	}
	if ev.Cat == "" {
		return fmt.Errorf("missing cat")
	}
	if ev.Ph == "X" && ev.Dur == "" {
		return fmt.Errorf("complete event missing dur")
	}
	if (ev.Ph == "b" || ev.Ph == "e" || ev.Ph == "n") && ev.ID == 0 {
		return fmt.Errorf("async event missing id")
	}
	return nil
}

// ValidateTraceStrict additionally requires the file to be one well-formed
// JSON document (i.e. the run Closed its sink cleanly).
func ValidateTraceStrict(path string) (*TraceSummary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc []json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("obs: trace is not a JSON array: %w", err)
	}
	sum, _, err := parseTrace(raw)
	if err != nil {
		return nil, err
	}
	if !sum.Terminated {
		return nil, fmt.Errorf("obs: trace missing the closing terminator")
	}
	return sum, nil
}
