package core

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
)

// busState tracks the current transfer direction of the shared data bus.
type busState int

const (
	busRead busState = iota
	busWrite
)

// Controller is the event-based DRAM controller model. It owns one memory
// channel: a set of ranks and banks behind shared data/address busses, with
// per-controller split read/write queues (paper §II-A). It attaches to the
// rest of the system through a response port with retry-based flow control.
//
// The model executes only on events: request arrival, the "next request"
// scheduling event, response dispatch, and per-rank refresh. DRAM behaviour
// is captured purely as bank/bus state transitions with the timing subset of
// §II-B; no per-cycle work happens anywhere.
type Controller struct {
	name string
	// replayName is c.name+".replay", precomputed so arming a replay does not
	// concatenate strings on the scheduling path.
	replayName string //ckpt:skip derived from name at construction
	cfg        Config //ckpt:skip static configuration, guarded by the manager fingerprint
	k          *sim.Kernel
	dec        dram.Decoder      //ckpt:skip derived from cfg.Spec by the constructor
	port       *mem.ResponsePort //ckpt:skip wiring, rebuilt by the constructor
	// tim and org cache the device's timing and organisation: they are read
	// on every scheduling decision and interface calls (or struct copies)
	// there are measurable.
	tim dram.Timing       //ckpt:skip cached copy of cfg.Device.Describe().Timing
	org dram.Organization //ckpt:skip cached copy of cfg.Device.Describe().Org
	// topo and the timing answers below cache the device's bank-group and
	// refresh interface answers; grouped hoists topo.Grouped() for the hot
	// paths, where flat devices (DDR3) must pay nothing for the machinery.
	topo    dram.Topology    //ckpt:skip derived from cfg.Device by the constructor
	grouped bool             //ckpt:skip derived from topo by the constructor
	trrdL   sim.Tick         //ckpt:skip cached cfg.Device.ActToAct(sameGroup)
	tccdL   sim.Tick         //ckpt:skip cached cfg.Device.ColToCol(sameGroup)
	tccdS   sim.Tick         //ckpt:skip cached cfg.Device.ColToCol(cross-group)
	tRPab   sim.Tick         //ckpt:skip cached cfg.Device.PrechargeAll()
	refSpec dram.RefreshSpec //ckpt:skip cached cfg.Device.RefreshMode()

	readQueue  []*dramPacket
	writeQueue []*dramPacket
	respQueue  []respEntry
	// inWriteQueue counts write-queue entries per burst address, enabling
	// O(1) read-forwarding and merge checks.
	inWriteQueue map[mem.Addr]int
	// readEntries counts occupied read-buffer slots: queued bursts plus
	// bursts serviced but not yet responded.
	readEntries int

	state          busState
	writesThisTime int
	readsThisTime  int
	draining       bool

	ranks        []*rank
	busBusyUntil sim.Tick

	retryReq  bool
	retryResp bool

	nextReqEvent  *sim.Event
	respondEvent  *sim.Event
	refreshEvents []*sim.Event

	refreshDue []sim.Tick

	// All-banks-precharged accounting for the power model.
	openBankCount      int
	allPrechargedSince sim.Tick
	prechargeAllTime   sim.Tick
	startTick          sim.Tick

	// Per-rank CKE state machine (extension, see cke.go): one power-down and
	// one self-refresh idle timer per rank; the CKE state itself lives in the
	// rank structs. lastWakeAt is the most recent CKE-raise tick across all
	// ranks, staggering simultaneous wake-ups by a clock each.
	pdEvents   []*sim.Event
	srEvents   []*sim.Event
	lastWakeAt sim.Tick

	// Fault-injection / ECC state (extension, see ecc.go). inj is nil when
	// fault modelling is disabled — the common case pays one nil check per
	// read burst and nothing else.
	inj *faults.Injector

	// pendingReplays tracks read bursts parked in a fault-replay backoff:
	// each sits in no queue (but holds its read-buffer entry) until a pooled
	// one-shot event re-queues it. The records make those in-flight replays
	// visible to the checkpoint machinery (see checkpoint.go).
	pendingReplays []*replayRecord

	// hub fans observability events out to attached probes; nil when no
	// probe is configured, so the disabled path is one pointer comparison.
	hub *obs.Hub //ckpt:skip observation fan-out, rebuilt by the constructor

	// dpFree and trFree recycle burst descriptors and chopped-read
	// transactions: every request allocates one descriptor per burst, which
	// makes them the controller's dominant steady-state allocation. Freed at
	// burst completion, reused at the next enqueue — plain LIFO lists, so
	// reuse order is a pure function of simulation state and parallel runs
	// stay deterministic. Live descriptors are serialized individually by
	// the checkpoint machinery; the free lists are disposable cache.
	dpFree []*dramPacket  //ckpt:skip allocation cache, never holds live state
	trFree []*transaction //ckpt:skip allocation cache, never holds live state

	st ctrlStats
}

// ctrlStats bundles the controller's registered statistics.
type ctrlStats struct {
	readReqs, writeReqs         *stats.Scalar
	readBursts, writeBursts     *stats.Scalar
	servicedByWrQ               *stats.Scalar
	mergedWrBursts              *stats.Scalar
	readRowHits, writeRowHits   *stats.Scalar
	activations                 *stats.Scalar
	precharges                  *stats.Scalar
	refreshes                   *stats.Scalar
	bytesRead, bytesWritten     *stats.Scalar
	rdQLat, wrQLat              *stats.Average
	memAccLat                   *stats.Average
	bytesPerActivate            *stats.Average
	readQueueLen, writeQueueLen *stats.Average
	rdWrTurnarounds             *stats.Scalar
	powerDowns                  *stats.Scalar
	selfRefreshes               *stats.Scalar
	// RAS statistics (see ecc.go).
	correctedErrors   *stats.Scalar
	uncorrectedErrors *stats.Scalar
	retriedBursts     *stats.Scalar
	retiredRows       *stats.Scalar
	scrubWrites       *stats.Scalar
	droppedScrubs     *stats.Scalar
}

// NewController validates the configuration and builds a controller wired to
// the given kernel, registering statistics under name in reg.
func NewController(k *sim.Kernel, cfg Config, reg *stats.Registry, name string) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec := cfg.Device.Describe()
	dec, err := dram.NewDecoder(spec.Org, cfg.Mapping, cfg.Channels)
	if err != nil {
		return nil, err
	}
	dec.XORBankRow = cfg.XORBankHash
	c := &Controller{
		name:         name,
		replayName:   name + ".replay",
		cfg:          cfg,
		k:            k,
		dec:          dec,
		inWriteQueue: make(map[mem.Addr]int),
		hub:          cfg.Probes.OrNil(),
		startTick:    k.Now(),
		tim:          spec.Timing,
		org:          spec.Org,
		topo:         cfg.Device.Topology(),
		trrdL:        cfg.Device.ActToAct(true),
		tccdL:        cfg.Device.ColToCol(true),
		tccdS:        cfg.Device.ColToCol(false),
		tRPab:        cfg.Device.PrechargeAll(),
		refSpec:      cfg.Device.RefreshMode(),
	}
	c.grouped = c.topo.Grouped()
	if cfg.Faults.Enabled() {
		inj, err := faults.NewInjector(cfg.Faults)
		if err != nil {
			return nil, err
		}
		c.inj = inj
	}
	c.port = mem.NewResponsePort(name+".port", c, k)
	c.ranks = make([]*rank, spec.Org.RanksPerChannel)
	c.refreshDue = make([]sim.Tick, len(c.ranks))
	for i := range c.ranks {
		c.ranks[i] = newRank(spec.Org, c.topo)
	}
	c.allPrechargedSince = k.Now()
	c.nextReqEvent = sim.NewEvent(name+".nextReq", c.processNextReqEvent)
	c.respondEvent = sim.NewEvent(name+".respond", c.processRespondEvent)
	c.lastWakeAt = neverTick
	c.pdEvents = make([]*sim.Event, len(c.ranks))
	c.srEvents = make([]*sim.Event, len(c.ranks))
	for i := range c.ranks {
		i := i
		c.pdEvents[i] = sim.NewEvent(fmt.Sprintf("%s.powerDown%d", name, i), func() { c.processRankPowerDown(i) })
		c.srEvents[i] = sim.NewEvent(fmt.Sprintf("%s.selfRefresh%d", name, i), func() { c.processRankSelfRefresh(i) })
		if cfg.PowerDownIdle > 0 {
			k.Schedule(c.pdEvents[i], k.Now()+cfg.PowerDownIdle)
		}
		if cfg.SelfRefreshIdle > 0 {
			k.Schedule(c.srEvents[i], k.Now()+cfg.SelfRefreshIdle)
		}
	}
	for i := range c.ranks {
		i := i
		// Stagger rank refreshes across the interval so multi-rank systems
		// never stall every rank at once.
		interval := c.refreshInterval()
		due := k.Now() + interval + interval*sim.Tick(i)/sim.Tick(len(c.ranks))
		c.refreshDue[i] = due
		ev := sim.NewEvent(fmt.Sprintf("%s.refresh%d", name, i), func() { c.processRefresh(i) })
		c.refreshEvents = append(c.refreshEvents, ev)
		k.Schedule(ev, due)
	}
	r := reg.Child(name)
	c.st = ctrlStats{
		readReqs:         r.NewScalar("readReqs", "read requests accepted"),
		writeReqs:        r.NewScalar("writeReqs", "write requests accepted"),
		readBursts:       r.NewScalar("readBursts", "read bursts (after chopping)"),
		writeBursts:      r.NewScalar("writeBursts", "write bursts entering the write queue"),
		servicedByWrQ:    r.NewScalar("servicedByWrQ", "read bursts forwarded from the write queue"),
		mergedWrBursts:   r.NewScalar("mergedWrBursts", "write bursts merged into existing entries"),
		readRowHits:      r.NewScalar("readRowHits", "read bursts hitting an open row"),
		writeRowHits:     r.NewScalar("writeRowHits", "write bursts hitting an open row"),
		activations:      r.NewScalar("activations", "row activate commands"),
		precharges:       r.NewScalar("precharges", "precharge commands"),
		refreshes:        r.NewScalar("refreshes", "refresh commands"),
		bytesRead:        r.NewScalar("bytesRead", "bytes read from DRAM"),
		bytesWritten:     r.NewScalar("bytesWritten", "bytes written to DRAM"),
		rdQLat:           r.NewAverage("rdQLat", "read burst queue+service latency (ns)"),
		wrQLat:           r.NewAverage("wrQLat", "write burst queue latency (ns)"),
		memAccLat:        r.NewAverage("memAccLat", "read memory access latency incl. static (ns)"),
		bytesPerActivate: r.NewAverage("bytesPerActivate", "bytes accessed per row activation"),
		readQueueLen:     r.NewAverage("readQueueLen", "read queue length at arrival"),
		writeQueueLen:    r.NewAverage("writeQueueLen", "write queue length at arrival"),
		rdWrTurnarounds:  r.NewScalar("rdWrTurnarounds", "bus direction switches"),
		powerDowns:       r.NewScalar("powerDowns", "power-down entries"),
		selfRefreshes:    r.NewScalar("selfRefreshes", "self-refresh entries"),

		correctedErrors:   r.NewScalar("correctedErrors", "read bursts with an ECC-corrected single-bit error"),
		uncorrectedErrors: r.NewScalar("uncorrectedErrors", "read bursts with an uncorrectable error (response poisoned)"),
		retriedBursts:     r.NewScalar("retriedBursts", "read burst replays after transient faults"),
		retiredRows:       r.NewScalar("retiredRows", "rows retired (remapped) after exhausting retries"),
		scrubWrites:       r.NewScalar("scrubWrites", "demand-scrub writebacks queued after corrections"),
		droppedScrubs:     r.NewScalar("droppedScrubs", "scrub writebacks dropped on a full write queue"),
	}
	return c, nil
}

// Port returns the system-facing response port.
func (c *Controller) Port() *mem.ResponsePort { return c.port }

// Name returns the controller instance name.
func (c *Controller) Name() string { return c.name }

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Quiescent reports whether no work is queued or in flight. Occupied
// read-buffer entries are counted too: a burst parked in a fault-replay
// backoff sits in no queue but still owes a response.
func (c *Controller) Quiescent() bool {
	return len(c.readQueue) == 0 && len(c.writeQueue) == 0 &&
		len(c.respQueue) == 0 && c.readEntries == 0
}

// Drain puts the controller in drain mode: buffered writes are written back
// regardless of the low watermark. Used at the end of closed experiments.
func (c *Controller) Drain() {
	c.draining = true
	c.kickScheduler()
}

// RecvTimingReq implements mem.Responder. Rank wake-up happens per burst at
// enqueue time (see wakeRank): only the ranks the request actually touches
// leave their low-power states.
//
//hot:path request entry; gated by TestControllerSteadyStateZeroAlloc
func (c *Controller) RecvTimingReq(pkt *mem.Packet) bool {
	switch pkt.Cmd {
	case mem.ReadReq:
		return c.addToReadQueue(pkt)
	case mem.WriteReq:
		return c.addToWriteQueue(pkt)
	default:
		panic(fmt.Sprintf("core: %s received %s", c.name, pkt.Cmd))
	}
}

// RecvRespRetry implements mem.Responder: the requestor can take responses
// again.
func (c *Controller) RecvRespRetry() {
	if !c.retryResp {
		return
	}
	c.retryResp = false
	c.processRespondEvent()
}

// burstRange iterates the burst-aligned pieces of a request, calling fn with
// each piece's burst address and the byte range it covers.
func (c *Controller) burstRange(pkt *mem.Packet, fn func(burstAddr, lo mem.Addr, size uint64)) int {
	burst := c.org.BurstBytes()
	count := 0
	addr := pkt.Addr
	remaining := pkt.Size
	for remaining > 0 {
		burstAddr := addr.AlignDown(burst)
		chunk := uint64(burstAddr) + burst - uint64(addr)
		if chunk > remaining {
			chunk = remaining
		}
		fn(burstAddr, addr, chunk)
		addr += mem.Addr(chunk)
		remaining -= chunk
		count++
	}
	return count
}

// burstCount returns how many DRAM bursts a request spans.
func (c *Controller) burstCount(pkt *mem.Packet) int {
	return c.burstRange(pkt, func(mem.Addr, mem.Addr, uint64) {})
}

func (c *Controller) addToReadQueue(pkt *mem.Packet) bool {
	now := c.k.Now()
	// First pass: how many bursts need a DRAM access vs. forwarding?
	needed := 0
	//lint:allow hotalloc escape analysis proves the literal does not escape (go build -gcflags=-m)
	c.burstRange(pkt, func(burstAddr, lo mem.Addr, size uint64) {
		if !c.canForwardFromWriteQueue(burstAddr, lo, size) {
			needed++
		}
	})
	if c.readEntries+needed > c.cfg.ReadBufferSize {
		c.retryReq = true
		if c.hub != nil {
			c.hub.Emit(obs.QueueRefuse{Src: c.name, At: now, Queue: obs.QueueRead, Depth: len(c.readQueue)})
		}
		return false
	}
	c.st.readReqs.Inc()
	c.st.readQueueLen.Sample(float64(len(c.readQueue)))
	if c.hub != nil {
		c.hub.Emit(obs.PacketEnqueued{Src: c.name, At: now, Pkt: pkt, Queue: obs.QueueRead, Bursts: needed})
		c.hub.Emit(obs.QueueAdmit{Src: c.name, At: now, Queue: obs.QueueRead, Depth: len(c.readQueue)})
	}
	tr := c.newTxn()
	tr.pkt, tr.remaining, tr.entries = pkt, needed, needed
	//lint:allow hotalloc escape analysis proves the literal does not escape (go build -gcflags=-m)
	c.burstRange(pkt, func(burstAddr, lo mem.Addr, size uint64) {
		c.st.readBursts.Inc()
		if c.canForwardFromWriteQueue(burstAddr, lo, size) {
			c.st.servicedByWrQ.Inc()
			return
		}
		dp := c.newDP()
		*dp = dramPacket{
			isRead:    true,
			coord:     c.dec.Decode(burstAddr),
			burstAddr: burstAddr,
			addr:      lo,
			size:      size,
			parent:    tr,
			priority:  c.priorityOf(pkt.RequestorID),
			entryTime: now,
		}
		c.wakeRank(dp.coord.Rank)
		c.readQueue = append(c.readQueue, dp)
	})
	c.readEntries += needed
	if needed == 0 {
		// Entirely satisfied by the write queue: only the static frontend
		// latency applies. No burst references the transaction.
		c.queueResponse(pkt, now+c.cfg.FrontendLatency, 0)
		c.freeTxn(tr)
	} else {
		c.kickScheduler()
	}
	return true
}

func (c *Controller) addToWriteQueue(pkt *mem.Packet) bool {
	now := c.k.Now()
	// Conservative capacity check before any mutation (merging could make
	// the true need smaller, but a refused packet must leave no trace).
	count := c.burstCount(pkt)
	if len(c.writeQueue)+count > c.cfg.WriteBufferSize {
		c.retryReq = true
		if c.hub != nil {
			c.hub.Emit(obs.QueueRefuse{Src: c.name, At: now, Queue: obs.QueueWrite, Depth: len(c.writeQueue)})
		}
		return false
	}
	c.st.writeReqs.Inc()
	c.st.writeQueueLen.Sample(float64(len(c.writeQueue)))
	if c.hub != nil {
		c.hub.Emit(obs.PacketEnqueued{Src: c.name, At: now, Pkt: pkt, Queue: obs.QueueWrite, Bursts: count})
		c.hub.Emit(obs.QueueAdmit{Src: c.name, At: now, Queue: obs.QueueWrite, Depth: len(c.writeQueue)})
	}
	//lint:allow hotalloc escape analysis proves the literal does not escape (go build -gcflags=-m)
	c.burstRange(pkt, func(burstAddr, lo mem.Addr, size uint64) {
		if c.inWriteQueue[burstAddr] > 0 && c.tryMergeWrite(burstAddr, lo, size) {
			c.st.mergedWrBursts.Inc()
			return
		}
		dp := c.newDP()
		*dp = dramPacket{
			isRead:    false,
			coord:     c.dec.Decode(burstAddr),
			burstAddr: burstAddr,
			addr:      lo,
			size:      size,
			priority:  c.priorityOf(pkt.RequestorID),
			entryTime: now,
		}
		c.wakeRank(dp.coord.Rank)
		c.writeQueue = append(c.writeQueue, dp)
		c.inWriteQueue[burstAddr]++
		c.st.writeBursts.Inc()
	})
	// Early write response (§II-A): respond as soon as the request is
	// buffered; the DRAM access happens later without system-visible cost.
	c.queueResponse(pkt, now+c.cfg.FrontendLatency, 0)
	c.kickScheduler()
	return true
}

// canForwardFromWriteQueue reports whether a queued write fully covers the
// read byte range [lo, lo+size).
func (c *Controller) canForwardFromWriteQueue(burstAddr, lo mem.Addr, size uint64) bool {
	if c.inWriteQueue[burstAddr] == 0 {
		return false
	}
	for _, w := range c.writeQueue {
		if w.burstAddr == burstAddr && w.addr <= lo && lo+mem.Addr(size) <= w.addr+mem.Addr(w.size) {
			return true
		}
	}
	return false
}

// tryMergeWrite merges a new write piece into an existing same-burst entry
// when their byte ranges overlap or touch; it reports success.
func (c *Controller) tryMergeWrite(burstAddr, lo mem.Addr, size uint64) bool {
	hi := lo + mem.Addr(size)
	for _, w := range c.writeQueue {
		if w.burstAddr != burstAddr {
			continue
		}
		wHi := w.addr + mem.Addr(w.size)
		if lo <= wHi && w.addr <= hi {
			if lo < w.addr {
				w.addr = lo
			}
			if hi > wHi {
				wHi = hi
			}
			w.size = uint64(wHi - w.addr)
			return true
		}
	}
	return false
}

// queueResponse arranges for pkt to be sent back at sendAt, releasing
// that many read-buffer entries once it leaves.
func (c *Controller) queueResponse(pkt *mem.Packet, sendAt sim.Tick, release int) {
	c.respQueue = insertResp(c.respQueue, respEntry{pkt: pkt, sendAt: sendAt, release: release})
	first := c.respQueue[0].sendAt
	if c.respondEvent.Scheduled() {
		if c.respondEvent.When() > first {
			c.k.Reschedule(c.respondEvent, first)
		}
	} else if !c.retryResp {
		c.k.Schedule(c.respondEvent, first)
	}
}

func (c *Controller) processRespondEvent() {
	now := c.k.Now()
	for len(c.respQueue) > 0 && c.respQueue[0].sendAt <= now {
		e := c.respQueue[0]
		if e.pkt.Cmd.IsRequest() {
			e.pkt.MakeResponse()
		}
		if !c.port.SendTimingResp(e.pkt) {
			c.retryResp = true
			return
		}
		if c.hub != nil {
			c.hub.Emit(obs.ResponseSent{Src: c.name, At: now, Pkt: e.pkt})
		}
		// Pop by copy rather than re-slicing: respQueue[1:] would strand the
		// front capacity and make insertResp reallocate every cycle. The
		// queue is short (bounded by the read buffer), so the copy is cheap.
		n := copy(c.respQueue, c.respQueue[1:])
		c.respQueue = c.respQueue[:n]
		if e.release > 0 {
			c.readEntries -= e.release
			c.maybeSendReqRetry()
		}
	}
	if len(c.respQueue) > 0 && !c.respondEvent.Scheduled() {
		c.k.Schedule(c.respondEvent, c.respQueue[0].sendAt)
	}
	c.scheduleLowPowerChecks()
}

// maybeSendReqRetry wakes a requestor blocked on a full queue.
func (c *Controller) maybeSendReqRetry() {
	if c.retryReq {
		c.retryReq = false
		c.port.SendReqRetry()
	}
}

// kickScheduler makes sure the next-request event is pending.
func (c *Controller) kickScheduler() {
	if !c.nextReqEvent.Scheduled() {
		c.k.Schedule(c.nextReqEvent, c.k.Now())
	}
}

// processNextReqEvent is the scheduling core (paper §II-C): it picks the bus
// direction with the write-drain watermarks, selects a request with
// FCFS/FR-FCFS, performs the access, and re-arms itself just early enough
// that the next decision happens close to issue time.
//
//hot:path scheduling core; fires once per serviced burst
func (c *Controller) processNextReqEvent() {
	switch c.state {
	case busRead:
		switchToWrites := false
		if len(c.readQueue) == 0 {
			// No reads: drain writes once past the low watermark (or when
			// draining for the end of a run).
			if len(c.writeQueue) == 0 ||
				(len(c.writeQueue) <= c.cfg.writeLowMark() && !c.draining) {
				c.scheduleLowPowerChecks()
				return // idle until a new request arrives
			}
			switchToWrites = true
		} else {
			idx := c.chooseNext(c.readQueue)
			dp := c.readQueue[idx]
			c.readQueue = append(c.readQueue[:idx], c.readQueue[idx+1:]...)
			c.doDRAMAccess(dp)
			c.readsThisTime++
			// The ECC/fault path may poison the burst, stretch its ready
			// time (correction latency) or demand a replay; a replayed
			// burst re-enters the read queue later and must not advance
			// its transaction yet.
			if c.inj == nil || !c.inspectReadBurst(dp) {
				tr := dp.parent
				tr.remaining--
				if dp.readyTime > tr.lastReady {
					tr.lastReady = dp.readyTime
				}
				c.freeDP(dp)
				if tr.remaining == 0 {
					if tr.poisoned {
						tr.pkt.Poisoned = true
					}
					release := c.transactionEntries(tr)
					c.queueResponse(tr.pkt, tr.lastReady+c.cfg.FrontendLatency+c.cfg.BackendLatency, release)
					c.freeTxn(tr)
				}
			}
			// Forced switch at the high watermark.
			if len(c.writeQueue) >= c.cfg.writeHighMark() {
				switchToWrites = true
			}
		}
		if switchToWrites {
			c.state = busWrite
			c.writesThisTime = 0
			c.st.rdWrTurnarounds.Inc()
			if c.hub != nil {
				c.hub.Emit(obs.WriteDrainEnter{Src: c.name, At: c.k.Now(), QueueLen: len(c.writeQueue)})
			}
		}
	case busWrite:
		if len(c.writeQueue) > 0 {
			idx := c.chooseNext(c.writeQueue)
			dp := c.writeQueue[idx]
			c.writeQueue = append(c.writeQueue[:idx], c.writeQueue[idx+1:]...)
			c.inWriteQueue[dp.burstAddr]--
			if c.inWriteQueue[dp.burstAddr] == 0 {
				delete(c.inWriteQueue, dp.burstAddr)
			}
			c.doDRAMAccess(dp)
			c.writesThisTime++
			c.freeDP(dp)
			c.maybeSendReqRetry()
		}
		// Switch back to reads when the write queue is empty, when we are
		// comfortably below the low watermark, or when reads are waiting
		// and the minimum write burst has been drained (gem5's hysteresis).
		if len(c.writeQueue) == 0 ||
			(len(c.writeQueue)+c.cfg.MinWritesPerSwitch < c.cfg.writeLowMark() && !c.draining) ||
			(len(c.readQueue) > 0 && c.writesThisTime >= c.cfg.MinWritesPerSwitch) {
			c.state = busRead
			c.readsThisTime = 0
			c.st.rdWrTurnarounds.Inc()
			if c.hub != nil {
				c.hub.Emit(obs.WriteDrainExit{Src: c.name, At: c.k.Now(), Writes: c.writesThisTime})
			}
		}
	}
	if len(c.readQueue) > 0 || len(c.writeQueue) > 0 {
		t := &c.tim
		headroom := t.TRP + t.TRCD + t.TCL
		next := c.k.Now()
		if c.busBusyUntil > headroom && c.busBusyUntil-headroom > next {
			next = c.busBusyUntil - headroom
		}
		if !c.nextReqEvent.Scheduled() {
			c.k.Schedule(c.nextReqEvent, next)
		}
	}
}

// transactionEntries returns how many read-buffer entries tr occupies.
func (c *Controller) transactionEntries(tr *transaction) int {
	// Entries were reserved for the non-forwarded bursts only; remaining
	// hit zero exactly when all of them were serviced.
	return tr.entries
}

// priorityOf maps a requestor to its QoS level (0 when QoS is disabled).
func (c *Controller) priorityOf(requestorID int) int {
	if c.cfg.QoSPriority == nil {
		return 0
	}
	return c.cfg.QoSPriority(requestorID)
}

// chooseNext returns the queue index to service next. FCFS takes the head.
// FR-FCFS follows gem5's hierarchy: the first *seamless* row hit (column
// ready by the time the data bus frees), then the first ready-but-not-
// seamless hit, then the request whose bank frees earliest (paper §II-C).
// With QoS enabled, only the highest priority level present in the queue
// competes.
//
//hot:path FR-FCFS scan over the whole queue
func (c *Controller) chooseNext(q []*dramPacket) int {
	if c.cfg.Scheduling == FCFS || len(q) == 1 {
		return 0
	}
	minPri := 0
	if c.cfg.QoSPriority != nil {
		minPri = q[0].priority
		for _, p := range q[1:] {
			if p.priority > minPri {
				minPri = p.priority
			}
		}
	}
	now := c.k.Now()
	// A column command issued at or before this tick keeps the data bus
	// busy back-to-back (gem5's minColAt): the seamless threshold.
	minColAt := maxTick(now, c.busBusyUntil-c.tim.TCL)
	prepped := -1
	for i, p := range q {
		if p.priority < minPri {
			continue
		}
		rk, bi := c.ranks[p.coord.Rank], p.coord.Bank
		// A row opened during a refresh blackout is not a ready hit: its
		// activate is booked for after the blackout, so preferring it over
		// a genuinely ready request in another rank wastes the window.
		// (No power-state gate is needed: a burst only enters a queue after
		// wakeRank, so every candidate's rank has CKE high by construction;
		// the post-wake tXP/tXS costs are already folded into the per-bank
		// allowed-at times this scan reads.)
		if rk.openRow[bi] != int64(p.coord.Row) || rk.refreshUntil[bi] > now {
			continue
		}
		if rk.colAllowedAt[bi] <= minColAt {
			// Seamless hit: issuing it leaves no bus idle gap. Taking the
			// first queued one is gem5's FCFS-among-seamless rule.
			return i
		}
		if prepped < 0 {
			prepped = i
		}
	}
	if prepped >= 0 {
		// Hits still beat misses even when none is seamless, but a hit that
		// would stall the bus no longer shadows a seamless hit queued
		// behind it.
		return prepped
	}
	best := -1
	bestAt, bestReady := sim.MaxTick, sim.MaxTick
	for i, p := range q {
		if p.priority < minPri {
			continue
		}
		// Primary key: the true issue tick including bus serialisation, as
		// doDRAMAccess will charge it. Secondary key: raw bank readiness —
		// among bus-bound candidates (equal true cost) pick the bank that
		// frees earliest, as gem5's earliestBanks does, preserving bank
		// parallelism instead of degrading to arrival order.
		ready := c.rawIssueAt(p)
		at := c.clampToBus(ready)
		if at < bestAt || (at == bestAt && ready < bestReady) {
			best, bestAt, bestReady = i, at, ready
		}
	}
	return best
}

// rawIssueAt computes the earliest column-command tick for p from bank and
// rank state alone, without mutating anything.
func (c *Controller) rawIssueAt(p *dramPacket) sim.Tick {
	t := &c.tim
	now := c.k.Now()
	rk, bi := c.ranks[p.coord.Rank], p.coord.Bank

	colReady := rk.colAllowedAt[bi]
	if rk.openRow[bi] != int64(p.coord.Row) {
		actAt := maxTick(now, rk.actAllowedAt[bi],
			rk.lastActAt+t.TRRD,
			rk.earliestActByWindow(c.org.ActivationLimit, t.TXAW))
		if c.grouped {
			actAt = maxTick(actAt, rk.actGroupAt[c.topo.GroupOf(bi)]+c.trrdL)
		}
		if rk.openRow[bi] != rowClosed {
			actAt = maxTick(actAt, maxTick(now, rk.preAllowedAt[bi])+t.TRP)
		}
		colReady = actAt + t.TRCD
	}
	dirAllowed := rk.rdAllowedAt
	if !p.isRead {
		dirAllowed = rk.wrAllowedAt
	}
	at := maxTick(now, colReady, dirAllowed)
	if c.grouped {
		at = maxTick(at, rk.colGroupAt[c.topo.GroupOf(bi)], rk.colAnyAt)
	}
	return at
}

// clampToBus applies the same data-bus serialisation doDRAMAccess charges:
// a command whose data would start before the bus frees is pushed out so
// its data follows the in-flight burst back-to-back.
func (c *Controller) clampToBus(at sim.Tick) sim.Tick {
	if at+c.tim.TCL < c.busBusyUntil {
		return c.busBusyUntil - c.tim.TCL
	}
	return at
}

// estimateIssue computes the true issue tick for p — bank, rank and data
// bus state included, exactly what doDRAMAccess will charge — without
// mutating any state; it is the cost function behind FR-FCFS.
func (c *Controller) estimateIssue(p *dramPacket) sim.Tick {
	return c.clampToBus(c.rawIssueAt(p))
}

// doDRAMAccess performs the chosen burst: it opens the row if needed
// (respecting tRP, tRRD and the tXAW window), claims the data bus, applies
// the direction-turnaround constraints, and lets the page policy decide
// whether to precharge afterwards.
//
//hot:path per-burst timing update
func (c *Controller) doDRAMAccess(p *dramPacket) {
	t := &c.tim
	org := &c.org
	now := c.k.Now()
	ri, bi := p.coord.Rank, p.coord.Bank
	rk := c.ranks[ri]
	// Service is the single choke point every burst passes through, so the
	// rank is guaranteed awake (paying tXP/tXS through the allowed-at
	// arrays) before any command below is stamped — even for writes that
	// parked below the drain watermark while the rank slept.
	c.wakeRank(ri)

	row := int64(p.coord.Row)
	if rk.openRow[bi] == row {
		if p.isRead {
			c.st.readRowHits.Inc()
		} else {
			c.st.writeRowHits.Inc()
		}
	} else {
		if rk.openRow[bi] != rowClosed {
			c.prechargeBank(ri, rk, bi, maxTick(now, rk.preAllowedAt[bi]))
		}
		actAt := maxTick(now, rk.actAllowedAt[bi],
			rk.lastActAt+t.TRRD,
			rk.earliestActByWindow(org.ActivationLimit, t.TXAW))
		if c.grouped {
			actAt = maxTick(actAt, rk.actGroupAt[c.topo.GroupOf(bi)]+c.trrdL)
		}
		c.activateBank(ri, rk, bi, actAt, row)
	}

	dirAllowed := rk.rdAllowedAt
	if !p.isRead {
		dirAllowed = rk.wrAllowedAt
	}
	cmdAt := maxTick(now, rk.colAllowedAt[bi], dirAllowed)
	if c.grouped {
		cmdAt = maxTick(cmdAt, rk.colGroupAt[c.topo.GroupOf(bi)], rk.colAnyAt)
	}
	// The command may overlap in-flight data; only the data transfer itself
	// serialises on the bus.
	if cmdAt+t.TCL < c.busBusyUntil {
		cmdAt = c.busBusyUntil - t.TCL
	}
	if c.grouped {
		// Book the group spacing for the *next* column command: tCCD_L
		// within this group, tCCD_S to any other (usually tBURST, which the
		// bus serialisation above already enforces — but not when writes
		// follow reads with a shorter turnaround).
		g := c.topo.GroupOf(bi)
		rk.colGroupAt[g] = maxTick(rk.colGroupAt[g], cmdAt+c.tccdL)
		rk.colAnyAt = maxTick(rk.colAnyAt, cmdAt+c.tccdS)
	}
	dataEnd := cmdAt + t.TCL + t.TBURST
	c.busBusyUntil = dataEnd
	rk.busyUntil = maxTick(rk.busyUntil, dataEnd)
	rk.idleSince = maxTick(rk.idleSince, dataEnd)
	p.readyTime = dataEnd
	if c.hub != nil {
		kind := power.CmdWR
		if p.isRead {
			kind = power.CmdRD
		}
		c.emitCommand(kind, p.coord.Rank, p.coord.Bank, cmdAt)
		var sysPkt *mem.Packet
		if p.parent != nil {
			sysPkt = p.parent.pkt
		}
		c.hub.Emit(obs.BurstScheduled{
			Src: c.name, At: cmdAt, Pkt: sysPkt, Read: p.isRead,
			Rank: p.coord.Rank, Bank: p.coord.Bank, Row: p.coord.Row,
			DataEnd: dataEnd,
		})
	}

	burstBytes := org.BurstBytes()
	if p.isRead {
		rk.preAllowedAt[bi] = maxTick(rk.preAllowedAt[bi], cmdAt+t.TRTP)
		rk.wrAllowedAt = maxTick(rk.wrAllowedAt, dataEnd+t.TRTW)
		c.st.bytesRead.Add(float64(burstBytes))
		lat := (p.readyTime - p.entryTime).Nanoseconds()
		c.st.rdQLat.Sample(lat)
		c.st.memAccLat.Sample(lat + (c.cfg.FrontendLatency + c.cfg.BackendLatency).Nanoseconds())
	} else {
		rk.preAllowedAt[bi] = maxTick(rk.preAllowedAt[bi], dataEnd+t.TWR)
		rk.rdAllowedAt = maxTick(rk.rdAllowedAt, dataEnd+t.TWTR)
		c.st.bytesWritten.Add(float64(burstBytes))
		if !p.scrub {
			// Scrub writebacks are controller-internal traffic: they move
			// bytes but are not system write requests, so they stay out of
			// the queueing-latency statistic.
			c.st.wrQLat.Sample((now - p.entryTime).Nanoseconds())
		}
	}
	rk.rowAccesses[bi]++
	rk.bytesAccessed[bi] += burstBytes

	c.applyPagePolicy(ri, rk, bi, p)
}

// applyPagePolicy decides whether the row stays open after an access.
func (c *Controller) applyPagePolicy(ri int, rk *rank, bi int, p *dramPacket) {
	switch c.cfg.Page {
	case Closed:
		c.prechargeBank(ri, rk, bi, rk.preAllowedAt[bi])
	case ClosedAdaptive:
		// Keep the row open only if more accesses to it are queued.
		if !c.queuedRowHit(p.coord) {
			c.prechargeBank(ri, rk, bi, rk.preAllowedAt[bi])
		}
	case OpenAdaptive:
		// Close early if a conflicting access is queued and no hit is.
		if c.queuedRowConflict(p.coord) && !c.queuedRowHit(p.coord) {
			c.prechargeBank(ri, rk, bi, rk.preAllowedAt[bi])
		}
	case Open:
		if c.cfg.MaxAccessesPerRow > 0 && rk.rowAccesses[bi] >= c.cfg.MaxAccessesPerRow {
			c.prechargeBank(ri, rk, bi, rk.preAllowedAt[bi])
		}
	}
}

// queuedRowHit reports whether any queued burst targets the open row of the
// same bank.
func (c *Controller) queuedRowHit(coord dram.Coord) bool {
	for _, q := range [2][]*dramPacket{c.readQueue, c.writeQueue} {
		for _, p := range q {
			if p.coord.Rank == coord.Rank && p.coord.Bank == coord.Bank && p.coord.Row == coord.Row {
				return true
			}
		}
	}
	return false
}

// queuedRowConflict reports whether any queued burst targets a different row
// of the same bank.
func (c *Controller) queuedRowConflict(coord dram.Coord) bool {
	for _, q := range [2][]*dramPacket{c.readQueue, c.writeQueue} {
		for _, p := range q {
			if p.coord.Rank == coord.Rank && p.coord.Bank == coord.Bank && p.coord.Row != coord.Row {
				return true
			}
		}
	}
	return false
}

// emitCommand forwards a DRAM command to the attached probes.
func (c *Controller) emitCommand(kind power.CommandKind, rankIdx, bankIdx int, at sim.Tick) {
	if c.hub == nil {
		return
	}
	c.hub.Emit(obs.DRAMCommand{Src: c.name, Cmd: power.Command{Kind: kind, Rank: rankIdx, Bank: bankIdx, At: at}})
}

// activateBank opens a row at actAt and records the activate for
// tRRD/tXAW accounting and statistics.
func (c *Controller) activateBank(ri int, rk *rank, bi int, actAt sim.Tick, row int64) {
	t := &c.tim
	rk.openRow[bi] = row
	rk.colAllowedAt[bi] = actAt + t.TRCD
	rk.preAllowedAt[bi] = maxTick(rk.preAllowedAt[bi], actAt+t.TRAS)
	rk.rowAccesses[bi] = 0
	rk.bytesAccessed[bi] = 0
	rk.recordAct(actAt, c.org.ActivationLimit)
	if c.grouped {
		g := c.topo.GroupOf(bi)
		rk.actGroupAt[g] = maxTick(rk.actGroupAt[g], actAt)
	}
	rk.busyUntil = maxTick(rk.busyUntil, actAt)
	c.st.activations.Inc()
	if c.hub != nil {
		c.emitCommand(power.CmdACT, ri, bi, actAt)
	}
	if c.openBankCount == 0 {
		d := actAt - c.allPrechargedSince
		if d > 0 {
			c.prechargeAllTime += d
		}
	}
	c.openBankCount++
}

// prechargeBank closes a bank's row at preAt (tRP later the bank can
// activate again) and records statistics.
func (c *Controller) prechargeBank(ri int, rk *rank, bi int, preAt sim.Tick) {
	if rk.openRow[bi] == rowClosed {
		return
	}
	t := &c.tim
	c.st.bytesPerActivate.Sample(float64(rk.bytesAccessed[bi]))
	rk.openRow[bi] = rowClosed
	rk.actAllowedAt[bi] = maxTick(rk.actAllowedAt[bi], preAt+t.TRP)
	rk.rowAccesses[bi] = 0
	rk.bytesAccessed[bi] = 0
	rk.busyUntil = maxTick(rk.busyUntil, preAt)
	c.st.precharges.Inc()
	if c.hub != nil {
		c.emitCommand(power.CmdPRE, ri, bi, preAt)
	}
	c.openBankCount--
	if c.openBankCount == 0 {
		c.allPrechargedSince = preAt + t.TRP
	}
}

// refreshInterval returns the cadence of the active refresh engine: tREFI
// for all-bank, tREFI/banks for per-bank (one bank per command), and
// tREFI/banks-per-group for DDR5 same-bank (one bank of every group per
// command). The engine itself is picked by refreshEngine.
func (c *Controller) refreshInterval() sim.Tick {
	interval := c.tim.TREFI
	switch c.refreshEngine() {
	case dram.RefPerBank:
		interval /= sim.Tick(c.org.BanksPerRank)
	case dram.RefSameBank:
		interval /= sim.Tick(c.topo.BanksPerGroup)
	}
	return interval
}

// refreshEngine resolves the refresh discipline actually run: the Config's
// per-bank override wins (the refresh ablation sweeps it), otherwise the
// device's native discipline decides — DDR5 parts refresh same-bank, LPDDR
// specs may declare per-bank, everything else refreshes all-bank.
func (c *Controller) refreshEngine() dram.RefreshKind {
	if c.cfg.Refresh == RefreshPerBank {
		return dram.RefPerBank
	}
	return c.refSpec.Kind
}

// processRefresh issues a refresh for a rank (paper §II-B: refreshes cause
// the big latency spikes, so they are modelled). The all-bank discipline
// blocks the whole rank for tRFC; per-bank refreshes one bank for a
// shortened window at a proportionally higher cadence; same-bank (DDR5)
// blocks one bank of every group for tRFCsb.
func (c *Controller) processRefresh(rankIdx int) {
	t := &c.tim
	now := c.k.Now()
	rk := c.ranks[rankIdx]

	if rk.cke == ckeSelfRefresh {
		// The rank is refreshing itself; just keep the cadence alive (the
		// self-refresh exit will restart it a full interval out anyway).
		c.refreshDue[rankIdx] = now + t.TREFI
		c.k.Reschedule(c.refreshEvents[rankIdx], c.refreshDue[rankIdx])
		return
	}
	if rk.cke.inPowerDown() {
		// Refresh is the controller's job while merely powered down: wake
		// the rank (paying tCKE/tXP — leavePowerDown pushes the per-bank
		// allowed-at times, which the refresh start respects below).
		c.wakeRank(rankIdx)
	}

	interval := c.refreshInterval()
	switch c.refreshEngine() {
	case dram.RefPerBank:
		c.refreshOneBank(rankIdx, rk)
	case dram.RefSameBank:
		c.refreshSameBank(rankIdx, rk)
	default:
		c.refreshAllBanks(rankIdx, rk)
	}
	c.st.refreshes.Inc()

	c.refreshDue[rankIdx] += interval
	next := c.refreshDue[rankIdx]
	if next <= now {
		next = now + interval
		c.refreshDue[rankIdx] = next
	}
	c.k.Schedule(c.refreshEvents[rankIdx], next)
	// An idle rank can head back to a low-power state after the refresh (the
	// blackout end gates the entry via lowPowerBlockedUntil).
	c.scheduleLowPowerChecks()
}

// refreshAllBanks closes every bank and blocks the rank for tRFC. On
// devices distinguishing all-bank from per-bank precharge (LPDDR tRPab),
// closing two or more rows at once is a precharge-all and pays the longer
// tRPab before the REF may start.
func (c *Controller) refreshAllBanks(rankIdx int, rk *rank) {
	t := &c.tim
	now := c.k.Now()
	start := now
	preCount, lastPre := 0, sim.Tick(0)
	for i := 0; i < rk.numBanks(); i++ {
		if rk.openRow[i] != rowClosed {
			preAt := maxTick(now, rk.preAllowedAt[i])
			c.prechargeBank(rankIdx, rk, i, preAt)
			start = maxTick(start, preAt+t.TRP)
			preCount++
			lastPre = maxTick(lastPre, preAt)
		} else {
			start = maxTick(start, rk.actAllowedAt[i])
		}
	}
	if preCount >= 2 && c.tRPab > t.TRP {
		start = maxTick(start, lastPre+c.tRPab)
	}
	done := start + t.TRFC
	for i := 0; i < rk.numBanks(); i++ {
		rk.actAllowedAt[i] = maxTick(rk.actAllowedAt[i], done)
		rk.refreshUntil[i] = maxTick(rk.refreshUntil[i], done)
	}
	rk.busyUntil = maxTick(rk.busyUntil, done)
	c.emitCommand(power.CmdREF, rankIdx, 0, start)
	if c.hub != nil {
		c.hub.Emit(obs.RefreshStart{Src: c.name, At: start, Rank: rankIdx, Bank: -1, Until: done})
		c.hub.Emit(obs.RefreshEnd{Src: c.name, At: done, Rank: rankIdx, Bank: -1})
	}
}

// refreshOneBank closes and refreshes only the next bank in round-robin
// order; the rest of the rank keeps serving. The shortened per-bank window
// is dram.TRFCpbNum/TRFCpbDen of tRFC (shared with power.CheckTiming so the
// referee can never disagree with the model).
func (c *Controller) refreshOneBank(rankIdx int, rk *rank) {
	t := &c.tim
	now := c.k.Now()
	bi := rk.nextRefreshBank
	start := now
	if rk.openRow[bi] != rowClosed {
		preAt := maxTick(now, rk.preAllowedAt[bi])
		c.prechargeBank(rankIdx, rk, bi, preAt)
		start = maxTick(start, preAt+t.TRP)
	} else {
		start = maxTick(start, rk.actAllowedAt[bi])
	}
	done := start + t.TRFC*dram.TRFCpbNum/dram.TRFCpbDen
	rk.actAllowedAt[bi] = maxTick(rk.actAllowedAt[bi], done)
	rk.refreshUntil[bi] = maxTick(rk.refreshUntil[bi], done)
	rk.busyUntil = maxTick(rk.busyUntil, done)
	c.emitCommand(power.CmdREF, rankIdx, bi, start)
	if c.hub != nil {
		c.hub.Emit(obs.RefreshStart{Src: c.name, At: start, Rank: rankIdx, Bank: bi, Until: done})
		c.hub.Emit(obs.RefreshEnd{Src: c.name, At: done, Rank: rankIdx, Bank: bi})
	}
	rk.nextRefreshBank = (bi + 1) % rk.numBanks()
}

// refreshSameBank issues a DDR5 REFsb: one bank of every group — the set
// sharing in-group index s, i.e. banks [s*Groups, (s+1)*Groups) under the
// bank-mod-Groups mapping — is closed and blacked out for tRFCsb, while the
// other banks keep serving. The rotating index s rides the same round-robin
// counter per-bank refresh uses, over [0, BanksPerGroup).
func (c *Controller) refreshSameBank(rankIdx int, rk *rank) {
	t := &c.tim
	now := c.k.Now()
	s := rk.nextRefreshBank % c.topo.BanksPerGroup
	lo, hi := s*c.topo.Groups, (s+1)*c.topo.Groups
	start := now
	for bi := lo; bi < hi; bi++ {
		if rk.openRow[bi] != rowClosed {
			preAt := maxTick(now, rk.preAllowedAt[bi])
			c.prechargeBank(rankIdx, rk, bi, preAt)
			start = maxTick(start, preAt+t.TRP)
		} else {
			start = maxTick(start, rk.actAllowedAt[bi])
		}
	}
	done := start + c.refSpec.Blackout
	for bi := lo; bi < hi; bi++ {
		rk.actAllowedAt[bi] = maxTick(rk.actAllowedAt[bi], done)
		rk.refreshUntil[bi] = maxTick(rk.refreshUntil[bi], done)
	}
	rk.busyUntil = maxTick(rk.busyUntil, done)
	c.emitCommand(power.CmdREFSB, rankIdx, s, start)
	if c.hub != nil {
		for bi := lo; bi < hi; bi++ {
			c.hub.Emit(obs.RefreshStart{Src: c.name, At: start, Rank: rankIdx, Bank: bi, Until: done})
			c.hub.Emit(obs.RefreshEnd{Src: c.name, At: done, Rank: rankIdx, Bank: bi})
		}
	}
	rk.nextRefreshBank = (s + 1) % c.topo.BanksPerGroup
}
