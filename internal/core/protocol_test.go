package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The strongest correctness statement in the repository: for randomized
// traffic, configurations and memory specs, every command stream the
// event-based controller emits must satisfy the full DRAM protocol as
// verified by the independent checker (tRCD, tRAS, tRP, tRRD, tXAW, tRCD,
// tWTR, tRTW, tRTP, tWR, bank legality and data-bus exclusivity).
func TestControllerObeysDRAMProtocol(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := []dram.Spec{
			dram.DDR3_1600_x64(), dram.DDR3_1333_8x8(),
			dram.LPDDR3_1600_x32(), dram.WideIO_200_x128(),
			dram.DDR3_1600_x64_2R(),
			dram.DDR4_3200_x64(), dram.DDR5_4800_x64(), dram.LPDDR5_6400_x32(),
		}
		spec := specs[rng.Intn(len(specs))]
		var trace power.CommandTrace

		k := sim.NewKernel()
		cfg := DefaultConfig(spec)
		cfg.Page = PagePolicy(rng.Intn(4))
		cfg.Scheduling = SchedulingPolicy(rng.Intn(2))
		cfg.Mapping = dram.Mapping(rng.Intn(3))
		cfg.Refresh = RefreshPolicy(rng.Intn(2))
		cfg.XORBankHash = rng.Intn(2) == 0
		cfg.MinWritesPerSwitch = 1 + rng.Intn(16)
		hub := obs.NewHub()
		hub.Attach(obs.CommandFunc(trace.Record))
		cfg.Probes = hub
		reg := stats.NewRegistry("t")
		c, err := NewController(k, cfg, reg, "mc")
		if err != nil {
			t.Log(err)
			return false
		}
		h := &harness{k: k, c: c}
		h.port = mem.NewRequestPort("gen", h, k)
		mem.Connect(h.port, c.Port())

		n := 200
		sent := 0
		var inject func()
		inject = func() {
			if h.blocked == nil && sent < n {
				addr := mem.Addr(rng.Intn(1<<26)) &^ 63
				if rng.Intn(3) == 0 {
					h.send(mem.NewWrite(addr, 64, 0, k.Now()))
				} else {
					h.send(mem.NewRead(addr, 64, 0, k.Now()))
				}
				sent++
			}
			if sent < n || h.blocked != nil {
				k.Schedule(sim.NewEvent("inject", inject),
					k.Now()+sim.Tick(rng.Intn(50))*sim.Nanosecond)
			}
		}
		k.Schedule(sim.NewEvent("inject", inject), 0)
		for i := 0; i < 10000 && !(sent >= n && c.Quiescent() && h.blocked == nil); i++ {
			if sent >= n {
				c.Drain()
			}
			k.RunUntil(k.Now() + sim.Microsecond)
		}
		if sent < n || !c.Quiescent() {
			t.Logf("seed %d: run did not complete", seed)
			return false
		}
		if trace.Len() == 0 {
			t.Logf("seed %d: empty command trace", seed)
			return false
		}
		violations := power.CheckTiming(spec, trace.Commands())
		if len(violations) > 0 {
			t.Logf("seed %d (%s, %s, %s): %d violations, first: %s",
				seed, spec.Name, cfg.Page, cfg.Scheduling, len(violations), violations[0])
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestStandardsObeyProtocol is the per-standard record/replay oracle run: for
// every supported interface family's representative preset, in one- and
// two-rank variants, bursty and saturating traffic must produce command
// streams the device-aware checker finds protocol clean — including the
// standard-specific rules (tRRD_L, tCCD_L/tCCD_S, tRFCsb, tRPab, the
// derived refresh-interval budget).
func TestStandardsObeyProtocol(t *testing.T) {
	for _, std := range dram.Standards() {
		spec, err := dram.ByStandard(std)
		if err != nil {
			t.Fatalf("ByStandard(%q): %v", std, err)
		}
		for _, ranks := range []int{1, 2} {
			spec := spec
			spec.Org.RanksPerChannel = ranks
			for _, saturating := range []bool{false, true} {
				name := fmt.Sprintf("%s/%dR/saturating=%v", std, ranks, saturating)
				t.Run(name, func(t *testing.T) {
					runStandardOracle(t, spec, saturating)
				})
			}
		}
	}
}

// runStandardOracle drives one traffic shape through a controller on the
// given spec, records the command stream, and requires a clean checker
// verdict. Bursty traffic leaves refresh-sized idle gaps (exercising the
// refresh engines and their cadences); saturating traffic keeps the queues
// full (exercising the back-to-back tRRD/tCCD arbitration).
func runStandardOracle(t *testing.T, spec dram.Spec, saturating bool) {
	t.Helper()
	var trace power.CommandTrace
	k := sim.NewKernel()
	cfg := DefaultConfig(spec)
	hub := obs.NewHub()
	hub.Attach(obs.CommandFunc(trace.Record))
	cfg.Probes = hub
	reg := stats.NewRegistry("t")
	c, err := NewController(k, cfg, reg, "mc")
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{k: k, c: c}
	h.port = mem.NewRequestPort("gen", h, k)
	mem.Connect(h.port, c.Port())

	rng := rand.New(rand.NewSource(11))
	const n = 400
	sent := 0
	var inject func()
	inject = func() {
		if h.blocked == nil && sent < n {
			addr := mem.Addr(rng.Intn(1<<26)) &^ 63
			if rng.Intn(3) == 0 {
				h.send(mem.NewWrite(addr, 64, 0, k.Now()))
			} else {
				h.send(mem.NewRead(addr, 64, 0, k.Now()))
			}
			sent++
		}
		if sent < n || h.blocked != nil {
			gap := sim.Tick(rng.Intn(5)) * sim.Nanosecond
			if !saturating && sent%16 == 0 {
				// An idle gap long enough for refresh (and its precharges)
				// to run against a quiet rank.
				gap = 2 * spec.Timing.TREFI
			}
			k.Schedule(sim.NewEvent("inject", inject), k.Now()+gap)
		}
	}
	k.Schedule(sim.NewEvent("inject", inject), 0)
	for i := 0; i < 100000 && !(sent >= n && c.Quiescent() && h.blocked == nil); i++ {
		if sent >= n {
			c.Drain()
		}
		k.RunUntil(k.Now() + sim.Microsecond)
	}
	if sent < n || !c.Quiescent() {
		t.Fatalf("run did not complete (%d/%d sent)", sent, n)
	}
	if trace.Len() == 0 {
		t.Fatal("empty command trace")
	}
	if spec.Refresh == dram.RefSameBank {
		refsb := 0
		for _, cmd := range trace.Commands() {
			if cmd.Kind == power.CmdREFSB {
				refsb++
			}
		}
		if refsb == 0 {
			t.Fatalf("%s declares same-bank refresh but the trace has no REFSB", spec.Name)
		}
	}
	violations := power.CheckTiming(spec, trace.Commands())
	if len(violations) > 0 {
		t.Fatalf("%s (%d ranks): %d violations, first: %s",
			spec.Name, spec.Org.RanksPerChannel, len(violations), violations[0])
	}
}
