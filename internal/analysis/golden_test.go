package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// moduleRoot returns the repository root (two levels up from this package),
// which is both the Load directory and the base for relative paths in golden
// files.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
	return root
}

// loadFixture type-checks one fixture package under testdata/src.
func loadFixture(t *testing.T, name string) []*analysis.Package {
	t.Helper()
	root := moduleRoot(t)
	pkgs, err := analysis.Load(root, "./internal/analysis/testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs
}

// TestGolden runs every analyzer over each fixture package (no per-package
// policy, like `simlint -all`) and compares the formatted findings against
// the checked-in golden file.
func TestGolden(t *testing.T) {
	root := moduleRoot(t)
	for _, name := range []string{
		"detmap", "simtime", "ckptfields", "eventpool", "suppress",
		"tickunits", "hotalloc", "shardiso", "fpcover", "probeonce", "interact",
	} {
		t.Run(name, func(t *testing.T) {
			pkgs := loadFixture(t, name)
			findings := analysis.Run(pkgs, analysis.Analyzers(), nil)
			if len(findings) == 0 {
				t.Fatalf("fixture %s produced no findings; each fixture must trip its analyzer", name)
			}
			got := analysis.Format(findings, root)
			goldenPath := filepath.Join(root, "internal", "analysis", "testdata", "golden", name+".golden")
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden: %v", err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestSuppression pins the semantics the golden file encodes: a well-formed
// //lint:allow (trailing or on the preceding line) silences its finding, a
// reasonless or unknown-analyzer directive is itself a finding and silences
// nothing, and a directive for a different analyzer does not suppress.
func TestSuppression(t *testing.T) {
	pkgs := loadFixture(t, "suppress")
	findings := analysis.Run(pkgs, analysis.Analyzers(), nil)

	byLine := map[int][]analysis.Finding{}
	for _, f := range findings {
		byLine[f.Pos.Line] = append(byLine[f.Pos.Line], f)
	}

	// Allowed (line 10) and AllowedAbove (line 16) are suppressed.
	for _, line := range []int{10, 16} {
		if fs := byLine[line]; len(fs) != 0 {
			t.Errorf("line %d: suppressed call still reported: %v", line, fs)
		}
	}

	// MissingReason: the reasonless directive is a "lint" finding and the
	// simtime finding survives.
	wantPair := func(line int, lintSubstr string) {
		t.Helper()
		var lint, simtime bool
		for _, f := range byLine[line] {
			switch f.Analyzer {
			case "lint":
				lint = strings.Contains(f.Message, lintSubstr)
			case "simtime":
				simtime = true
			}
		}
		if !lint {
			t.Errorf("line %d: missing [lint] finding containing %q; got %v", line, lintSubstr, byLine[line])
		}
		if !simtime {
			t.Errorf("line %d: the bad directive must not suppress the simtime finding; got %v", line, byLine[line])
		}
	}
	wantPair(22, "needs a reason")
	wantPair(27, "unknown analyzer")

	// WrongAnalyzer (line 33): directive names detmap, so simtime survives —
	// and the directive, suppressing nothing, is reported stale.
	var wrongSurvives, stale bool
	for _, f := range byLine[33] {
		switch f.Analyzer {
		case "simtime":
			wrongSurvives = true
		case "lint":
			stale = strings.Contains(f.Message, "no longer suppresses any finding")
		}
	}
	if !wrongSurvives {
		t.Errorf("line 33: //lint:allow detmap must not suppress a simtime finding; got %v", byLine[33])
	}
	if !stale {
		t.Errorf("line 33: unused //lint:allow detmap must be reported stale; got %v", byLine[33])
	}

	// DeliberatelyDormant (lines 40-41): the dormant eventpool directive's
	// stale finding is silenced by the //lint:allow lint escape hatch, and the
	// lint directive itself is exempt from staleness.
	for _, line := range []int{40, 41} {
		if fs := byLine[line]; len(fs) != 0 {
			t.Errorf("line %d: escape-hatched dormant directive still reported: %v", line, fs)
		}
	}
}

// TestInteract pins the cross-analyzer contract on the interact fixture:
// every registered analyzer fires at least once, the global finding order is
// deterministic (file, line, analyzer, message — and stable across runs),
// and a //lint:allow scoped to one analyzer leaves the other analyzer's
// finding on the same line intact.
func TestInteract(t *testing.T) {
	pkgs := loadFixture(t, "interact")
	findings := analysis.Run(pkgs, analysis.Analyzers(), nil)

	fired := map[string]bool{}
	for _, f := range findings {
		fired[f.Analyzer] = true
	}
	for _, a := range analysis.Analyzers() {
		if !fired[a.Name] {
			t.Errorf("interact fixture did not trip analyzer %q", a.Name)
		}
	}

	// Deterministic order: sorted by (file, line, analyzer, message), and a
	// second run over a fresh load produces the identical sequence.
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line == b.Pos.Line && a.Analyzer > b.Analyzer) {
			t.Errorf("findings out of order at %d: %v before %v", i, a, b)
		}
	}
	again := analysis.Run(loadFixture(t, "interact"), analysis.Analyzers(), nil)
	if len(again) != len(findings) {
		t.Fatalf("re-run produced %d findings, first run %d", len(again), len(findings))
	}
	for i := range findings {
		if findings[i].String() != again[i].String() {
			t.Errorf("finding %d differs across runs: %q vs %q", i, findings[i], again[i])
		}
	}

	// Scoped suppression: the line in Scoped carries both a tickunits and a
	// simtime finding; the directive names tickunits only.
	var scopedLine int
	for _, f := range findings {
		if f.Analyzer == "simtime" && f.Pos.Line > 55 && f.Pos.Line < 65 {
			scopedLine = f.Pos.Line
		}
	}
	if scopedLine == 0 {
		t.Fatal("interact fixture: no simtime finding in Scoped")
	}
	for _, f := range findings {
		if f.Pos.Line == scopedLine && f.Analyzer == "tickunits" {
			t.Errorf("line %d: //lint:allow tickunits did not suppress the tickunits finding", scopedLine)
		}
	}
}

// TestFindingString covers the plain rendering used by error paths.
func TestFindingString(t *testing.T) {
	pkgs := loadFixture(t, "simtime")
	findings := analysis.Run(pkgs, analysis.Analyzers(), nil)
	if len(findings) == 0 {
		t.Fatal("no findings")
	}
	s := findings[0].String()
	if !strings.Contains(s, "[simtime]") || !strings.Contains(s, "simtime.go:") {
		t.Errorf("Finding.String() = %q; want file:line: [analyzer] message", s)
	}
}

// TestRealTreeClean asserts the acceptance criterion directly: under the
// default policy, simlint reports nothing on this repository.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := moduleRoot(t)
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	cfg := analysis.DefaultConfig()
	if err := cfg.Validate(analysis.Analyzers()); err != nil {
		t.Fatalf("default config: %v", err)
	}
	findings := analysis.Run(pkgs, analysis.Analyzers(), cfg)
	if len(findings) != 0 {
		t.Errorf("tree is not lint-clean under the default policy:\n%s", analysis.Format(findings, root))
	}
}

// TestSelfcheckGolden pins the consolidated fixture run that
// ci/lint_selfcheck.sh performs end-to-end: all fixture packages loaded into
// ONE program, findings rendered as JSON Lines, compared byte-for-byte
// against selfcheck.json. Beyond covering FormatJSON, this checks a
// whole-program isolation property the per-fixture goldens cannot: one
// fixture's fingerprint vocabulary or call graph must not bleed coverage
// into another fixture's findings, so the consolidated output stays exactly
// the union of the individual goldens.
func TestSelfcheckGolden(t *testing.T) {
	root := moduleRoot(t)
	fixtureDir := filepath.Join(root, "internal", "analysis", "testdata", "src")
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	var patterns []string
	for _, e := range entries {
		if e.IsDir() {
			patterns = append(patterns, "./internal/analysis/testdata/src/"+e.Name())
		}
	}
	pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(patterns) {
		t.Fatalf("loaded %d packages for %d fixtures", len(pkgs), len(patterns))
	}
	got := analysis.FormatJSON(analysis.Run(pkgs, analysis.Analyzers(), nil), root)
	goldenPath := filepath.Join(root, "internal", "analysis", "testdata", "golden", "selfcheck.json")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("consolidated findings differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}
