package dram

import (
	"fmt"

	"repro/internal/mem"
)

// Mapping selects how a physical address decodes into channel, rank, bank,
// row and column (paper Table I). Names read most-significant first, so
// RoRaBaCoCh places the channel bits lowest (cache-line interleaving) and
// the row bits highest.
type Mapping int

// Address mapping schemes.
const (
	// RoRaBaCoCh: row, rank, bank, column, channel. Channel interleaving at
	// burst granularity; sequential addresses walk the columns of one row,
	// maximising page hits (used with open-page policies in the paper).
	RoRaBaCoCh Mapping = iota
	// RoRaBaChCo: row, rank, bank, channel, column. Channel interleaving at
	// row-buffer granularity.
	RoRaBaChCo
	// RoCoRaBaCh: row, column, rank, bank, channel. Sequential addresses
	// walk banks first, maximising bank parallelism (used with closed-page
	// policies in the paper).
	RoCoRaBaCh
)

// String names the mapping.
func (m Mapping) String() string {
	switch m {
	case RoRaBaCoCh:
		return "RoRaBaCoCh"
	case RoRaBaChCo:
		return "RoRaBaChCo"
	case RoCoRaBaCh:
		return "RoCoRaBaCh"
	}
	return fmt.Sprintf("Mapping(%d)", int(m))
}

// ParseMapping converts a scheme name into a Mapping.
func ParseMapping(s string) (Mapping, error) {
	switch s {
	case "RoRaBaCoCh":
		return RoRaBaCoCh, nil
	case "RoRaBaChCo":
		return RoRaBaChCo, nil
	case "RoCoRaBaCh":
		return RoCoRaBaCh, nil
	}
	return 0, fmt.Errorf("dram: unknown address mapping %q", s)
}

// Coord is a decoded DRAM coordinate.
type Coord struct {
	Rank int
	Bank int
	Row  uint64
	// Col is the burst-granular column index within the row.
	Col uint64
}

// Decoder maps physical addresses to DRAM coordinates for one controller.
// Channels is the number of interleaved channels in the system (the
// controller strips the channel bits; channel *selection* happens in the
// crossbar, as in the paper's Figure 1 arrangement).
type Decoder struct {
	Org      Organization
	Mapping  Mapping
	Channels int
	// XORBankRow, when set, XORs the bank index with the low row bits — the
	// classic bank-hashing trick (gem5's xor-based interleaving) that
	// spreads pathological same-bank strides across all banks.
	XORBankRow bool
}

// NewDecoder validates and builds a decoder.
func NewDecoder(org Organization, mapping Mapping, channels int) (Decoder, error) {
	if err := org.Validate(); err != nil {
		return Decoder{}, err
	}
	if channels <= 0 || !isPow2(uint64(channels)) {
		return Decoder{}, fmt.Errorf("dram: channels must be a positive power of two, got %d", channels)
	}
	return Decoder{Org: org, Mapping: mapping, Channels: channels}, nil
}

// InterleaveBytes returns the channel-interleaving granularity implied by
// the mapping: burst size for the *Ch-low schemes, row-buffer size for
// RoRaBaChCo.
func (d Decoder) InterleaveBytes() uint64 {
	if d.Mapping == RoRaBaChCo {
		return d.Org.RowBufferBytes
	}
	return d.Org.BurstBytes()
}

// Channel returns which channel an address belongs to.
func (d Decoder) Channel(a mem.Addr) int {
	return int(uint64(a) / d.InterleaveBytes() % uint64(d.Channels))
}

// Decode splits an address into its DRAM coordinate. The address is the full
// system address; channel bits are stripped according to the mapping.
func (d Decoder) Decode(a mem.Addr) Coord {
	org := d.Org
	burst := org.BurstBytes()
	colsPerRow := org.BurstsPerRow()
	addr := uint64(a) / burst

	var c Coord
	switch d.Mapping {
	case RoRaBaCoCh:
		// offset | channel | column | bank | rank | row
		addr /= uint64(d.Channels)
		c.Col = addr % colsPerRow
		addr /= colsPerRow
		c.Bank = int(addr % uint64(org.BanksPerRank))
		addr /= uint64(org.BanksPerRank)
		c.Rank = int(addr % uint64(org.RanksPerChannel))
		addr /= uint64(org.RanksPerChannel)
		c.Row = addr % org.RowsPerBank
	case RoRaBaChCo:
		// offset | column | channel | bank | rank | row
		c.Col = addr % colsPerRow
		addr /= colsPerRow
		addr /= uint64(d.Channels)
		c.Bank = int(addr % uint64(org.BanksPerRank))
		addr /= uint64(org.BanksPerRank)
		c.Rank = int(addr % uint64(org.RanksPerChannel))
		addr /= uint64(org.RanksPerChannel)
		c.Row = addr % org.RowsPerBank
	case RoCoRaBaCh:
		// offset | channel | bank | rank | column | row
		addr /= uint64(d.Channels)
		c.Bank = int(addr % uint64(org.BanksPerRank))
		addr /= uint64(org.BanksPerRank)
		c.Rank = int(addr % uint64(org.RanksPerChannel))
		addr /= uint64(org.RanksPerChannel)
		c.Col = addr % colsPerRow
		addr /= colsPerRow
		c.Row = addr % org.RowsPerBank
	default:
		panic("dram: unknown mapping")
	}
	if d.XORBankRow {
		c.Bank ^= int(c.Row) & (d.Org.BanksPerRank - 1)
	}
	return c
}

// Encode is the inverse of Decode for channel 0 — it reconstructs a physical
// address from a coordinate. The DRAM-aware traffic generator uses it to
// target specific rows and banks (§III-A).
func (d Decoder) Encode(c Coord, channel int) mem.Addr {
	org := d.Org
	burst := org.BurstBytes()
	colsPerRow := org.BurstsPerRow()

	if d.XORBankRow {
		// Invert the decode-side hash so Decode(Encode(c)) == c.
		c.Bank ^= int(c.Row) & (org.BanksPerRank - 1)
	}

	var addr uint64
	switch d.Mapping {
	case RoRaBaCoCh:
		addr = c.Row
		addr = addr*uint64(org.RanksPerChannel) + uint64(c.Rank)
		addr = addr*uint64(org.BanksPerRank) + uint64(c.Bank)
		addr = addr*colsPerRow + c.Col
		addr = addr*uint64(d.Channels) + uint64(channel)
	case RoRaBaChCo:
		addr = c.Row
		addr = addr*uint64(org.RanksPerChannel) + uint64(c.Rank)
		addr = addr*uint64(org.BanksPerRank) + uint64(c.Bank)
		addr = addr*uint64(d.Channels) + uint64(channel)
		addr = addr*colsPerRow + c.Col
	case RoCoRaBaCh:
		addr = c.Row
		addr = addr*colsPerRow + c.Col
		addr = addr*uint64(org.RanksPerChannel) + uint64(c.Rank)
		addr = addr*uint64(org.BanksPerRank) + uint64(c.Bank)
		addr = addr*uint64(d.Channels) + uint64(channel)
	default:
		panic("dram: unknown mapping")
	}
	return mem.Addr(addr * burst)
}
