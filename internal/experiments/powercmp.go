package experiments

import (
	"fmt"
	"math"

	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trafficgen"
)

// PowerRow compares the Micron-model power of both controllers on one test
// case (§III-C3: max difference 8%, average 3% in the paper), plus a third
// methodology: a DRAMPower-style analysis of the event controller's command
// trace, captured through the observability hub.
type PowerRow struct {
	Case         string
	EventMW      float64
	CycleMW      float64
	TraceMW      float64
	DiffPercent  float64
	TraceDiffPct float64 // trace-based vs event-aggregate, same controller
}

// PowerResult is the full §III-C3 comparison.
type PowerResult struct {
	Rows            []PowerRow
	MaxDiffPct      float64
	AvgDiffPct      float64
	MaxTraceDiffPct float64
}

// powerCase is one traffic scenario for the power comparison.
type powerCase struct {
	name       string
	readPct    int
	closedPage bool
	mapping    dram.Mapping
	stride     uint64
	banks      int
}

// RunPowerComparison runs a representative subset of the §III test cases
// through both models and compares total DRAM power.
func RunPowerComparison(requests uint64) (*PowerResult, error) {
	spec := dram.DDR3_1333_8x8()
	cases := []powerCase{
		{"open/reads/stride1/b8", 100, false, dram.RoRaBaCoCh, 1, 8},
		{"open/reads/stride16/b4", 100, false, dram.RoRaBaCoCh, 16, 4},
		{"open/mix/stride8/b8", 50, false, dram.RoRaBaCoCh, 8, 8},
		{"open/writes/stride16/b2", 0, false, dram.RoRaBaCoCh, 16, 2},
		{"closed/reads/stride4/b8", 100, true, dram.RoCoRaBaCh, 4, 8},
		{"closed/mix/stride2/b4", 50, true, dram.RoCoRaBaCh, 2, 4},
		{"closed/writes/stride1/b8", 0, true, dram.RoCoRaBaCh, 1, 8},
	}
	res := &PowerResult{}
	var sum float64
	for _, pc := range cases {
		run := func(kind system.Kind, probes *obs.Hub) (power.Activity, error) {
			dec, err := dram.NewDecoder(spec.Org, pc.mapping, 1)
			if err != nil {
				return power.Activity{}, err
			}
			pattern := &trafficgen.DRAMAware{
				Decoder: dec, StrideBursts: pc.stride, Banks: pc.banks,
				ReadPercent: pc.readPct, Seed: 3,
			}
			rig, err := system.NewTrafficRig(system.RigConfig{
				Kind: kind, Spec: spec, Mapping: pc.mapping, ClosedPage: pc.closedPage,
				Gen: trafficgen.Config{
					RequestBytes:   spec.Org.BurstBytes(),
					MaxOutstanding: 32,
					Count:          requests,
				},
				Pattern: pattern,
				Probes:  probes,
			})
			if err != nil {
				return power.Activity{}, err
			}
			if !rig.Run(sim.Second) {
				return power.Activity{}, fmt.Errorf("experiments: power case %q (%s) did not complete", pc.name, kind)
			}
			return rig.Ctrl.PowerStats(), nil
		}
		var cmds power.CommandTrace
		hub := obs.NewHub()
		hub.Attach(obs.CommandFunc(cmds.Record))
		evAct, err := run(system.EventBased, hub)
		if err != nil {
			return nil, err
		}
		cyAct, err := run(system.CycleBased, nil)
		if err != nil {
			return nil, err
		}
		evMW := power.Compute(spec, evAct).TotalMW()
		cyMW := power.Compute(spec, cyAct).TotalMW()
		trMW := power.AnalyzeCommands(spec, cmds.Commands(), evAct.Elapsed).TotalMW()
		diff := math.Abs(evMW-cyMW) / cyMW * 100
		trDiff := math.Abs(trMW-evMW) / evMW * 100
		res.Rows = append(res.Rows, PowerRow{
			Case: pc.name, EventMW: evMW, CycleMW: cyMW, TraceMW: trMW,
			DiffPercent: diff, TraceDiffPct: trDiff,
		})
		sum += diff
		if diff > res.MaxDiffPct {
			res.MaxDiffPct = diff
		}
		if trDiff > res.MaxTraceDiffPct {
			res.MaxTraceDiffPct = trDiff
		}
	}
	res.AvgDiffPct = sum / float64(len(res.Rows))
	return res, nil
}
