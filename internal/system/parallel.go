package system

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cyclesim"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trafficgen"
	"repro/internal/xbar"
)

// This file implements the sharded (parallel) multi-channel rig. Channel
// interleaving happens in the crossbar (paper §II-E), so downstream of it
// each DRAM channel is an independent timing domain: its controller, DRAM
// state, refresh machinery and statistics never touch another channel's.
// The rig exploits that by giving every channel its own sim.Kernel and
// running the kernels on worker goroutines in fixed time quanta, separated
// by barriers — conservative parallel discrete-event simulation with the
// channel links as the lookahead device.
//
// Determinism argument, in full:
//
//  1. Within a quantum, a shard only reads and writes its own state. The
//     single cross-shard channel is mem.ShardLink, and during a quantum a
//     shard only appends to its side's outbox.
//  2. Outboxes are published at the barrier, by the coordinator, alone, in
//     a fixed order. Every cross-shard event (a link delivery) is therefore
//     scheduled by deterministic single-threaded code.
//  3. The quantum never exceeds the link latency, so a published packet is
//     always due at or after the barrier tick: it lands in the receiving
//     shard's future and can never reorder against events the receiver
//     already executed.
//
// Hence the event sequence of every kernel — and every statistic — is a
// pure function of the configuration, independent of worker count or OS
// scheduling. Workers=1 and Workers=N produce bit-identical dumps; the test
// suite asserts this on the JSON output.
//
// The sharded topology is not timing-identical to MultiChannelRig: each
// request pays one extra link hop each way (the lookahead latency), which
// models the physical channel interconnect the single-kernel rig folds into
// the crossbar. Sharding pays off once channels >= 2 and the per-quantum
// event work outweighs barrier overhead; with one channel (or on a single
// hardware thread) prefer Workers <= 1, which runs the same deterministic
// schedule without goroutine overhead.

// ShardedConfig shapes a ShardedRig.
type ShardedConfig struct {
	Kind       Kind
	Spec       dram.Spec
	Mapping    dram.Mapping
	ClosedPage bool
	Channels   int
	Xbar       xbar.Config
	// Gens and Patterns pair up; one generator per entry.
	Gens     []trafficgen.Config
	Patterns []trafficgen.Pattern
	// Workers is the number of worker goroutines stepping shards between
	// barriers. 0 or 1 steps every shard on the calling goroutine; either
	// way the schedule, and so every statistic, is identical.
	Workers int
	// Lookahead is the one-way channel-link latency and the barrier
	// quantum. 0 defaults to the crossbar latency (or 1ns if that is 0).
	Lookahead sim.Tick
	// TuneEvent and TuneCycle optionally adjust the matched controller
	// configurations, as in RigConfig.
	TuneEvent func(*core.Config)
	TuneCycle func(*cyclesim.Config)
	// FrontProbes feeds observability events from the frontend shard (the
	// crossbar, plus the rig's quantum-barrier events). Probes attached here
	// run on the frontend kernel's goroutine only.
	FrontProbes *obs.Hub
	// ShardProbes optionally gives each channel shard its own hub (length
	// must be 0 or Channels). Per-shard probes run on that shard's worker
	// goroutine during quanta, so each must touch only its own state; merge
	// results in OnQuantum, which runs in the single-threaded barrier.
	ShardProbes []*obs.Hub
	// OnQuantum, when set, runs in the single-threaded barrier section at
	// the end of every Step — the place to drain per-shard probe buffers in
	// deterministic shard order (e.g. obs.TraceSink.Flush).
	OnQuantum func()
}

// ShardedRig is the parallel counterpart of MultiChannelRig: generators and
// crossbar on a frontend kernel, each channel controller on its own kernel
// behind a ShardLink.
type ShardedRig struct {
	Front *sim.Kernel
	Chans []*sim.Kernel
	Reg   *stats.Registry
	Gens  []*trafficgen.Generator
	Xbar  *xbar.Crossbar
	Ctrls []Controller
	Links []*mem.ShardLink

	workers   int
	lookahead sim.Tick
	frontHub  *obs.Hub // nil when no frontend probe is attached
	onQuantum func()
}

// buildShardController builds one channel controller with the rig's tuning
// hooks applied; cfg.Channels tells the address decoder how many channel
// bits the crossbar already consumed.
func buildShardController(k *sim.Kernel, cfg ShardedConfig, reg *stats.Registry, hub *obs.Hub, name string) (Controller, error) {
	switch cfg.Kind {
	case EventBased:
		c := MatchedEventConfig(cfg.Spec, cfg.Mapping, cfg.Channels, cfg.ClosedPage)
		if cfg.TuneEvent != nil {
			cfg.TuneEvent(&c)
		}
		c.Probes = hub
		return core.NewController(k, c, reg, name)
	case CycleBased:
		c := MatchedCycleConfig(cfg.Spec, cfg.Mapping, cfg.Channels, cfg.ClosedPage)
		if cfg.TuneCycle != nil {
			cfg.TuneCycle(&c)
		}
		c.Probes = hub
		return cyclesim.NewController(k, c, reg, name)
	}
	return nil, fmt.Errorf("system: unknown controller kind %d", cfg.Kind)
}

// NewShardedRig builds the sharded multi-channel system.
func NewShardedRig(cfg ShardedConfig) (*ShardedRig, error) {
	if len(cfg.Gens) != len(cfg.Patterns) || len(cfg.Gens) == 0 {
		return nil, fmt.Errorf("system: generators (%d) and patterns (%d) must pair up", len(cfg.Gens), len(cfg.Patterns))
	}
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("system: sharded rig needs at least one channel")
	}
	lookahead := cfg.Lookahead
	if lookahead == 0 {
		lookahead = cfg.Xbar.Latency
	}
	if lookahead <= 0 {
		lookahead = sim.Nanosecond
	}

	front := sim.NewKernel()
	reg := stats.NewRegistry("sys")
	dec, err := dram.NewDecoder(cfg.Spec.Org, cfg.Mapping, cfg.Channels)
	if err != nil {
		return nil, err
	}
	// Route at the mapping's interleave granularity, widened so no request
	// straddles a channel (the paper's cache-line-or-page default, §II-F).
	gran := dec.InterleaveBytes()
	for _, g := range cfg.Gens {
		for gran < g.RequestBytes {
			gran *= 2
		}
	}
	if len(cfg.ShardProbes) != 0 && len(cfg.ShardProbes) != cfg.Channels {
		return nil, fmt.Errorf("system: ShardProbes must be empty or one hub per channel (%d given, %d channels)",
			len(cfg.ShardProbes), cfg.Channels)
	}
	route := xbar.InterleaveRoute(cfg.Channels, gran)
	xcfg := cfg.Xbar
	xcfg.Probes = cfg.FrontProbes
	xb, err := xbar.New(front, xcfg, route, reg, "xbar")
	if err != nil {
		return nil, err
	}
	rig := &ShardedRig{
		Front:     front,
		Reg:       reg,
		Xbar:      xb,
		workers:   cfg.Workers,
		lookahead: lookahead,
		frontHub:  cfg.FrontProbes.OrNil(),
		onQuantum: cfg.OnQuantum,
	}
	for i := 0; i < cfg.Channels; i++ {
		ck := sim.NewKernel()
		// Each shard registers statistics in a private registry so hot
		// counters are written by exactly one worker; the root absorbs the
		// shard by reference, and the dump (always taken with workers
		// parked) sees live values. Per-shard probe hubs follow the same
		// ownership rule.
		shardReg := stats.NewRegistry("sys")
		var shardHub *obs.Hub
		if len(cfg.ShardProbes) > 0 {
			shardHub = cfg.ShardProbes[i]
		}
		ctrl, err := buildShardController(ck, cfg, shardReg, shardHub, fmt.Sprintf("mc%d", i))
		if err != nil {
			return nil, err
		}
		reg.Absorb(shardReg)
		link := mem.NewShardLink(fmt.Sprintf("link%d", i), front, ck, lookahead)
		mem.Connect(xb.AttachMemory("mem"), link.FrontPort())
		mem.Connect(link.BackPort(), ctrl.Port())
		rig.Chans = append(rig.Chans, ck)
		rig.Ctrls = append(rig.Ctrls, ctrl)
		rig.Links = append(rig.Links, link)
	}
	for i := range cfg.Gens {
		gen, err := trafficgen.New(front, cfg.Gens[i], cfg.Patterns[i], reg, fmt.Sprintf("gen%d", i))
		if err != nil {
			return nil, err
		}
		mem.Connect(gen.Port(), xb.AttachRequestor("gen"))
		rig.Gens = append(rig.Gens, gen)
	}
	return rig, nil
}

// Lookahead returns the barrier quantum (= link latency).
func (r *ShardedRig) Lookahead() sim.Tick { return r.lookahead }

// shardWorker is one persistent goroutine stepping a fixed subset of
// kernels each quantum.
type shardWorker struct {
	limit chan sim.Tick
	done  chan any // nil, or a recovered panic value
}

// ShardedSession is a steppable ShardedRig run: each Step advances every
// shard one lookahead quantum and executes the barrier section, so between
// Steps all kernels are parked at the barrier tick and every link outbox has
// been flushed — the only state in which a sharded checkpoint is valid (the
// link save refuses unflushed outboxes). Close stops the workers.
type ShardedSession struct {
	rig      *ShardedRig
	mgr      *checkpoint.Manager
	deadline sim.Tick

	kernels []*sim.Kernel
	nw      int
	workers []*shardWorker
}

// NewSession builds the rig's checkpoint manager and spins up the worker
// goroutines; see (*TrafficRig).NewSession for the contract. The worker
// count deliberately stays out of the fingerprint callers should build:
// statistics are worker-count independent, so a checkpoint taken with one
// worker count may be resumed with another.
func (r *ShardedRig) NewSession(fingerprint string, maxSim sim.Tick) (*ShardedSession, error) {
	mgr := checkpoint.NewManager(fingerprint)
	mgr.Register("front", checkpoint.WrapKernel(r.Front))
	for i, ck := range r.Chans {
		mgr.Register(fmt.Sprintf("chan%d", i), checkpoint.WrapKernel(ck))
	}
	mgr.Register("xbar", r.Xbar)
	for i, l := range r.Links {
		mgr.Register(fmt.Sprintf("link%d", i), l)
	}
	for i, c := range r.Ctrls {
		cc, ok := c.(checkpoint.Checkpointable)
		if !ok {
			return nil, fmt.Errorf("system: controller %s (%T) does not support checkpointing", c.Name(), c)
		}
		mgr.Register(fmt.Sprintf("mc%d", i), cc)
	}
	for i, g := range r.Gens {
		mgr.Register(fmt.Sprintf("gen%d", i), g)
	}
	mgr.Register("stats", checkpoint.WrapStats(r.Reg))

	s := &ShardedSession{
		rig:      r,
		mgr:      mgr,
		deadline: maxSim,
		kernels:  append([]*sim.Kernel{r.Front}, r.Chans...),
	}
	s.nw = r.workers
	if s.nw > len(s.kernels) {
		s.nw = len(s.kernels)
	}
	if s.nw > 1 {
		for j := 0; j < s.nw; j++ {
			w := &shardWorker{limit: make(chan sim.Tick), done: make(chan any, 1)}
			var mine []*sim.Kernel
			for i := j; i < len(s.kernels); i += s.nw {
				mine = append(mine, s.kernels[i])
			}
			go func() {
				for limit := range w.limit {
					w.done <- func() (pv any) {
						defer func() { pv = recover() }()
						for _, k := range mine {
							k.RunUntil(limit)
						}
						return nil
					}()
				}
			}()
			s.workers = append(s.workers, w)
		}
	}
	return s, nil
}

// Manager returns the checkpoint manager.
func (s *ShardedSession) Manager() *checkpoint.Manager { return s.mgr }

// Now returns the frontend kernel's tick (== every shard's tick between
// Steps).
func (s *ShardedSession) Now() sim.Tick { return s.rig.Front.Now() }

// Start arms the generators (fresh runs only).
func (s *ShardedSession) Start() {
	for _, g := range s.rig.Gens {
		g.Start()
	}
}

// stepKernels runs every kernel to the barrier tick. The channel send/receive
// pairs give the coordinator-worker handoff the happens-before edges the
// memory model (and the race detector) require. A panic in any shard is
// re-raised on the calling goroutine.
func (s *ShardedSession) stepKernels(limit sim.Tick) {
	if s.nw <= 1 {
		for _, k := range s.kernels {
			k.RunUntil(limit)
		}
		return
	}
	for _, w := range s.workers {
		w.limit <- limit
	}
	var pv any
	for _, w := range s.workers {
		if v := <-w.done; v != nil {
			pv = v
		}
	}
	if pv != nil {
		panic(pv)
	}
}

// Step advances one lookahead quantum plus the barrier section and reports
// completion.
func (s *ShardedSession) Step() (bool, error) {
	r := s.rig
	s.stepKernels(r.Front.Now() + r.lookahead)

	// Barrier section: single-threaded. Publish cross-shard traffic, then
	// check for completion and drive drains.
	for i, l := range r.Links {
		reqs, resps := l.Flush()
		if r.frontHub != nil && (reqs > 0 || resps > 0) {
			r.frontHub.Emit(obs.ShardQuantumFlush{
				Src: "rig", At: r.Front.Now(), Shard: i,
				Requests: reqs, Responses: resps,
			})
		}
	}
	if r.onQuantum != nil {
		// Still single-threaded: drain per-shard probe buffers in fixed
		// shard order so merged output is worker-count independent.
		r.onQuantum()
	}
	allDone := true
	for _, g := range r.Gens {
		if !g.Done() {
			allDone = false
			break
		}
	}
	if allDone {
		quiet := r.Xbar.Quiescent() && r.Xbar.InFlight() == 0
		for _, l := range r.Links {
			if !l.Quiescent() {
				quiet = false
			}
		}
		for _, c := range r.Ctrls {
			if !c.Quiescent() {
				if d, ok := c.(Drainer); ok {
					d.Drain()
				}
				quiet = false
			}
		}
		if quiet {
			return true, nil
		}
	}
	if r.Front.Now() >= s.deadline {
		return false, fmt.Errorf("system: sharded simulation did not complete within %s", s.deadline)
	}
	return false, nil
}

// Close stops the worker goroutines. The rig itself stays usable (stats,
// bandwidth queries); a new session may be opened afterwards.
func (s *ShardedSession) Close() {
	for _, w := range s.workers {
		close(w.limit)
	}
	s.workers = nil
	s.nw = 0
}

// Run starts all generators and steps the shards in lookahead-sized quanta
// until every generator finishes and the system drains, or until maxSim
// simulated time passes. It reports whether the run completed. A panic in
// any shard is re-raised on the calling goroutine.
func (r *ShardedRig) Run(maxSim sim.Tick) bool {
	s, err := r.NewSession("", r.Front.Now()+maxSim)
	if err != nil {
		// Only a non-checkpointable component trips this, and Run never
		// saves; fall back to a worker-less session shape is not possible,
		// so surface it loudly.
		panic(err)
	}
	defer s.Close()
	s.Start()
	for {
		done, err := s.Step()
		if done {
			return true
		}
		if err != nil {
			return false
		}
	}
}

// AggregateBandwidth sums channel bandwidths.
func (r *ShardedRig) AggregateBandwidth() float64 {
	var sum float64
	for _, c := range r.Ctrls {
		sum += c.Bandwidth()
	}
	return sum
}

// AvgBusUtilisation averages controller bus utilisation.
func (r *ShardedRig) AvgBusUtilisation() float64 {
	var sum float64
	for _, c := range r.Ctrls {
		sum += c.BusUtilisation()
	}
	return sum / float64(len(r.Ctrls))
}
