package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc keeps the //hot:path functions allocation-free. PR 7 bought the zero-alloc
// request cycle with pools, SoA bank state and pop-by-copy queues, and gates
// it dynamically with testing.AllocsPerRun; but the dynamic gate only sees
// the paths the gate's traffic exercises, and only after the regression is
// merged. Hotalloc is the static half of the contract: a function annotated
// //hot:path — and everything it transitively calls inside the module — must not
// contain constructs the compiler lowers to heap allocation.
//
// Flagged constructs: &T{...} and new/make, append to a slice the package
// does not capacity-manage (no make-with-cap or x = x[:n] reslice anywhere),
// closures that capture variables, non-pointer values boxed into interface
// parameters, string formatting/concatenation/conversion, map writes, `go`,
// and method-value captures.
//
// Exemptions, matching the conditions under which the AllocsPerRun gates
// run: statements guarded by the obs nil-hub fast path (`if hub != nil {…}`
// blocks and everything after an `if hub == nil { return }` early exit)
// never execute in a zero-alloc run and may allocate freely — that is the
// whole point of the Probes.OrNil design; and arguments to panic are
// failure-path diagnostics. The static check is cross-verified against the
// compiler's own escape analysis (`go build -gcflags=-m`) by
// TestHotEscapeAgreement, so the analyzer and gc agree about what the
// exempted regions are.
//
// False-positive policy: a construct the compiler provably keeps on the
// stack but the analyzer flags (a non-escaping &T{} fed to an inlined
// callee) gets //lint:allow hotalloc with the escape-analysis line cited as
// the reason.
var Hotalloc = &Analyzer{
	Name:       "hotalloc",
	Doc:        "forbid allocating constructs in //hot:path functions and their module-local callees",
	RunProgram: runHotalloc,
}

// isObsHub reports whether t is (a pointer to) the named type Hub from a
// package ending in "internal/obs".
func isObsHub(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Hub" || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs")
}

// hubNilCond reports whether cond contains `h <op> nil` for a hub-typed h,
// searching through && / || chains.
func hubNilCond(info *types.Info, cond ast.Expr, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if b.Op != op {
			return true
		}
		x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
		for _, pair := range [][2]ast.Expr{{x, y}, {y, x}} {
			if id, ok := pair[1].(*ast.Ident); ok && id.Name == "nil" {
				if t := info.TypeOf(pair[0]); t != nil && isObsHub(t) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// hotRegion is the non-exempt portion of one function body: the walk visits
// every node except nil-hub-guarded blocks and panic arguments.
type hotRegion struct {
	pkg  *Package
	body *ast.BlockStmt
}

// visit walks the function's non-exempt nodes, calling fn with the node
// stack. Exempt subtrees (probe-guard bodies, statements after an
// `if hub == nil { return }`, panic arguments) are skipped entirely.
func (r hotRegion) visit(fn func(n ast.Node, stack []ast.Node) bool) {
	info := r.pkg.Info
	var walkStmts func(list []ast.Stmt, stack []ast.Node)
	var walkNode func(n ast.Node, stack []ast.Node)

	walkNode = func(n ast.Node, stack []ast.Node) {
		WithStack(n, func(m ast.Node, sub []ast.Node) bool {
			full := append(stack, sub...)
			switch st := m.(type) {
			case *ast.IfStmt:
				if hubNilCond(info, st.Cond, token.NEQ) {
					// `if hub != nil { emit... }`: the body is the enabled
					// path; only Init/Cond/Else stay hot.
					if st.Init != nil {
						walkNode(st.Init, full)
					}
					walkNode(st.Cond, full)
					if st.Else != nil {
						walkNode(st.Else, full)
					}
					return false
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						return false // failure-path diagnostics may allocate
					}
				}
			case *ast.BlockStmt:
				// Handle statement lists ourselves so the early-return hub
				// guard can truncate them.
				if m != n {
					walkStmts(st.List, full)
					return false
				}
			}
			return fn(m, full)
		})
	}

	walkStmts = func(list []ast.Stmt, stack []ast.Node) {
		for _, st := range list {
			if ifs, ok := st.(*ast.IfStmt); ok && ifs.Else == nil &&
				hubNilCond(info, ifs.Cond, token.EQL) && endsInReturn(ifs.Body) {
				// `if hub == nil { return }`: everything after this guard is
				// the probes-enabled path of a probe-only helper.
				return
			}
			walkNode(st, stack)
		}
	}

	walkStmts(r.body.List, []ast.Node{r.body})
}

// endsInReturn reports whether the block's last statement is a return.
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// capacityManaged collects, per package, the slice objects the package
// visibly manages capacity for: assigned make with an explicit capacity, or
// re-sliced in place (x = x[:n] — the pop-by-copy and reset idioms). Appends
// to these stay within capacity in steady state.
func capacityManaged(pkg *Package) map[types.Object]bool {
	out := map[types.Object]bool{}
	obj := func(e ast.Expr) types.Object {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := pkg.Info.Uses[v]; o != nil {
				return o
			}
			return pkg.Info.Defs[v]
		case *ast.SelectorExpr:
			if sel := pkg.Info.Selections[v]; sel != nil {
				return sel.Obj()
			}
			return pkg.Info.Uses[v.Sel]
		}
		return nil
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, rhs := range st.Rhs {
					target := obj(st.Lhs[i])
					if target == nil {
						continue
					}
					switch r := ast.Unparen(rhs).(type) {
					case *ast.CallExpr:
						if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "make" && len(r.Args) == 3 {
							if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
								out[target] = true
							}
						}
					case *ast.SliceExpr:
						// x = x[:n] (pop-by-copy, reset) and x := y[:0]
						// (in-place filter) both reuse existing backing.
						out[target] = true
					}
				}
			case *ast.KeyValueExpr:
				// Composite-literal initialization: field: make([]T, n, c).
				if call, ok := ast.Unparen(st.Value).(*ast.CallExpr); ok && len(call.Args) == 3 {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
						if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
							if key, ok := st.Key.(*ast.Ident); ok {
								if o := pkg.Info.Uses[key]; o != nil {
									out[o] = true
								}
							}
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// pointerShaped reports whether converting a value of type t into an
// interface stores the value directly in the data word (no allocation).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// hotItem is one function on the hot path: a //hot:path root, or a
// module-local callee with the root it was first reached from.
type hotItem struct {
	fn   *types.Func
	root *types.Func
}

// hotReach runs the hotalloc reachability BFS: //hot:path roots expanded
// through call edges collected from non-exempt regions only — a call that
// happens solely under a probe guard is not on the zero-alloc path. The
// returned order is the deterministic BFS dequeue order. TestHotEscapeAgreement
// reuses this walk so the analyzer and the escape-analysis overlay agree
// about which functions are on the hot path.
func hotReach(prog *Program) []hotItem {
	roots := prog.DirectiveFuncs("hot:path")
	visited := map[*types.Func]bool{}
	var queue []hotItem
	for _, r := range roots {
		visited[r] = true
		queue = append(queue, hotItem{fn: r, root: r})
	}
	for i := 0; i < len(queue); i++ {
		it := queue[i]
		fi := prog.Funcs[it.fn]
		if fi == nil {
			continue
		}
		info := fi.Pkg.Info
		region := hotRegion{pkg: fi.Pkg, body: fi.Decl.Body}
		region.visit(func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := prog.canon(funcFor(info, call)) // cross-package callees resolve to import-loaded objects
			if callee == nil || visited[callee] {
				return true
			}
			if _, local := prog.Funcs[callee]; !local {
				return true
			}
			visited[callee] = true
			root := it.root
			if _, isHot := FuncDirective(prog.Funcs[callee].Decl, "hot:path"); isHot {
				root = callee
			}
			queue = append(queue, hotItem{fn: callee, root: root})
			return true
		})
	}
	return queue
}

func runHotalloc(pass *ProgramPass) {
	prog := pass.Prog

	capManaged := map[*Package]map[types.Object]bool{}
	capFor := func(pkg *Package) map[types.Object]bool {
		if m, ok := capManaged[pkg]; ok {
			return m
		}
		m := capacityManaged(pkg)
		capManaged[pkg] = m
		return m
	}

	for _, it := range hotReach(prog) {
		fi := prog.Funcs[it.fn]
		if fi == nil {
			continue
		}
		region := hotRegion{pkg: fi.Pkg, body: fi.Decl.Body}
		where := ""
		if it.fn != it.root {
			where = " (reached from //hot:path " + FuncDisplayName(it.root) + ")"
		}
		checkHotBody(pass, fi.Pkg, region, capFor(fi.Pkg), FuncDisplayName(it.fn), where)
	}
}

// checkHotBody reports every allocating construct in the region.
func checkHotBody(pass *ProgramPass, pkg *Package, region hotRegion, capOK map[types.Object]bool, name, where string) {
	info := pkg.Info
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in hot function %s%s; hot paths must not allocate", what, name, where)
	}
	region.visit(func(n ast.Node, stack []ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), "&composite literal escapes to the heap")
					return false
				}
			}
		case *ast.GoStmt:
			report(e.Pos(), "go statement spawns a goroutine")
		case *ast.FuncLit:
			if capturesOutside(info, e) {
				report(e.Pos(), "closure captures variables")
			}
			return false // judge the literal as its own (cold) context
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "new":
						report(e.Pos(), "new(...)")
					case "make":
						report(e.Pos(), "make(...)")
					case "append":
						if len(e.Args) > 0 && !appendAllowed(info, e.Args[0], capOK) {
							report(e.Pos(), "append to a slice without visible capacity management")
						}
					}
					return true
				}
			}
			if f := funcFor(info, e); f != nil {
				if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
					report(e.Pos(), "fmt."+f.Name()+" formats (allocates)")
					return true
				}
				checkBoxing(info, e, f, report)
			}
			// Conversions: string <-> []byte/[]rune copy.
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				if isStringByteConv(info, tv.Type, e.Args[0]) {
					report(e.Pos(), "string/[]byte conversion copies")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if t := info.TypeOf(e.X); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if tv, ok := info.Types[e]; !ok || tv.Value == nil {
							report(e.Pos(), "string concatenation")
						}
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := info.TypeOf(ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							report(e.Pos(), "map write may grow the map")
						}
					}
				}
			}
		case *ast.SelectorExpr:
			// Method value (x.M used as a value, not called) allocates a
			// bound-method closure.
			if sel := info.Selections[e]; sel != nil && sel.Kind() == types.MethodVal {
				if len(stack) >= 2 {
					if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(e) {
						return true
					}
				}
				report(e.Pos(), "method value captures its receiver")
			}
		}
		return true
	})
}

// capturesOutside reports whether the literal references a variable declared
// outside itself (a capture, which heap-allocates the closure).
func capturesOutside(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
			return false
		}
		return true
	})
	return captured
}

// appendAllowed reports whether the append target is a capacity-managed
// slice (or a map/func-typed... no: only slices reach here).
func appendAllowed(info *types.Info, target ast.Expr, capOK map[types.Object]bool) bool {
	switch v := ast.Unparen(target).(type) {
	case *ast.Ident:
		if o := info.Uses[v]; o != nil {
			return capOK[o]
		}
		if o := info.Defs[v]; o != nil {
			return capOK[o]
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[v]; sel != nil {
			return capOK[sel.Obj()]
		}
		if o := info.Uses[v.Sel]; o != nil {
			return capOK[o]
		}
	case *ast.SliceExpr:
		// append(x[:0], ...) reuses x's storage.
		return true
	}
	return false
}

// checkBoxing flags non-pointer-shaped arguments passed to interface-typed
// parameters (runtime convT* allocation).
func checkBoxing(info *types.Info, call *ast.CallExpr, f *types.Func, report func(token.Pos, string)) {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type()
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || pointerShaped(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			continue // constants may be boxed from read-only statics
		}
		report(arg.Pos(), "value boxed into interface parameter of "+f.Name())
	}
}

// isStringByteConv reports whether converting arg to target copies string
// bytes ([]byte(s), string(bs), []rune(s)).
func isStringByteConv(info *types.Info, target types.Type, arg ast.Expr) bool {
	at := info.TypeOf(arg)
	if at == nil {
		return false
	}
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		return false // constant conversions happen at compile time
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(target) && isBytes(at)) || (isBytes(target) && isStr(at))
}
