package system

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/trafficgen"
	"repro/internal/xbar"
)

// shardedConfig builds a two-generator, multi-channel sharded system with a
// deterministic mixed read/write workload.
func shardedConfig(kind Kind, channels, workers int, closed bool) ShardedConfig {
	spec := dram.DDR3_1600_x64()
	gen := trafficgen.Config{
		RequestBytes:   spec.Org.BurstBytes(),
		MaxOutstanding: 16,
		Count:          400,
	}
	g0, g1 := gen, gen
	g0.RequestorID = 0
	g1.RequestorID = 1
	return ShardedConfig{
		Kind:       kind,
		Spec:       spec,
		Mapping:    dram.RoRaBaCoCh,
		ClosedPage: closed,
		Channels:   channels,
		Xbar:       xbar.DefaultConfig(),
		Gens:       []trafficgen.Config{g0, g1},
		Patterns: []trafficgen.Pattern{
			&trafficgen.Linear{Start: 0, End: 1 << 24, Step: 64, ReadPercent: 80, Seed: 11},
			&trafficgen.Random{Start: 0, End: 1 << 24, Align: 64, ReadPercent: 60, Seed: 23},
		},
		Workers: workers,
	}
}

// shardedStats runs the rig to completion and returns the full stats dump
// (reads, writes, row hits, latency histograms — everything).
func shardedStats(t *testing.T, cfg ShardedConfig) (string, sim.Tick) {
	t.Helper()
	rig, err := NewShardedRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rig.Run(50 * sim.Millisecond) {
		t.Fatal("sharded rig did not complete")
	}
	var buf bytes.Buffer
	if err := rig.Reg.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), rig.Front.Now()
}

// The tentpole determinism claim: for the same seed and topology, serial
// (workers=1) and parallel (workers=N) runs produce bit-identical statistics
// — every counter and every latency histogram bucket — across page policies
// and channel counts. Run under -race this also exercises the sharded path
// for data races.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	for _, tc := range []struct {
		name     string
		channels int
		closed   bool
	}{
		{"open2ch", 2, false},
		{"closed2ch", 2, true},
		{"open4ch", 4, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, serialNow := shardedStats(t, shardedConfig(EventBased, tc.channels, 1, tc.closed))
			for _, workers := range []int{2, 1 + tc.channels} {
				par, parNow := shardedStats(t, shardedConfig(EventBased, tc.channels, workers, tc.closed))
				if par != serial {
					t.Fatalf("workers=%d stats differ from serial run:\nserial:\n%s\nparallel:\n%s",
						workers, serial, par)
				}
				if parNow != serialNow {
					t.Fatalf("workers=%d finished at %s, serial at %s", workers, parNow, serialNow)
				}
			}
		})
	}
}

// The cycle-based controller model shards identically: the rig does not
// depend on which controller kind sits behind the links.
func TestShardedDeterministicCycleBased(t *testing.T) {
	serial, _ := shardedStats(t, shardedConfig(CycleBased, 2, 1, false))
	par, _ := shardedStats(t, shardedConfig(CycleBased, 2, 3, false))
	if par != serial {
		t.Fatal("cycle-based sharded run not deterministic across workers")
	}
}

// Repeated runs with identical configuration are bit-identical (determinism
// over time, not just across worker counts).
func TestShardedRepeatable(t *testing.T) {
	a, _ := shardedStats(t, shardedConfig(EventBased, 2, 2, false))
	b, _ := shardedStats(t, shardedConfig(EventBased, 2, 2, false))
	if a != b {
		t.Fatal("two identical sharded runs diverged")
	}
}

// The sharded system actually moves traffic: every generator completes and
// every channel sees work.
func TestShardedSpreadsWork(t *testing.T) {
	cfg := shardedConfig(EventBased, 4, 3, false)
	rig, err := NewShardedRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rig.Run(50 * sim.Millisecond) {
		t.Fatal("did not complete")
	}
	for i, g := range rig.Gens {
		if !g.Done() {
			t.Fatalf("gen%d not done", i)
		}
	}
	for i, c := range rig.Ctrls {
		if c.Bandwidth() <= 0 {
			t.Fatalf("mc%d saw no traffic", i)
		}
	}
	if rig.AggregateBandwidth() <= 0 || rig.AvgBusUtilisation() <= 0 {
		t.Fatal("aggregate stats empty")
	}
	for _, l := range rig.Links {
		if !l.Quiescent() {
			t.Fatal("link not quiescent after completed run")
		}
	}
}

// adaptiveConfig is shardedConfig with the adaptive horizon enabled; spaced
// throttles the generators so the system has idle stretches where the
// horizon actually widens (a saturating workload pins it near the floor).
func adaptiveConfig(channels, workers, quanta int, spaced bool) ShardedConfig {
	cfg := shardedConfig(EventBased, channels, workers, false)
	cfg.AdaptiveQuanta = quanta
	if spaced {
		for i := range cfg.Gens {
			cfg.Gens[i].Count = 120
			cfg.Gens[i].InterTransaction = 200 * sim.Nanosecond
		}
	}
	return cfg
}

// sessionStats runs a sharded rig through an explicit session so the test
// can read the barrier count alongside the stats dump.
func sessionStats(t *testing.T, cfg ShardedConfig) (string, sim.Tick, uint64) {
	t.Helper()
	rig, err := NewShardedRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rig.NewSession("", rig.Front.Now()+50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	var buf bytes.Buffer
	if err := rig.Reg.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), rig.Front.Now(), s.Steps()
}

// The adaptive horizon keeps the tentpole claim: for every quanta value the
// run is bit-identical across worker counts and repeatable, on both a
// saturating workload (horizon pinned near the floor) and a spaced one
// (horizon actually widening). Under -race this also exercises the adaptive
// path for data races.
func TestShardedAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	for _, quanta := range []int{4, 64} {
		for _, spaced := range []bool{false, true} {
			t.Run(fmt.Sprintf("q%d_spaced%v", quanta, spaced), func(t *testing.T) {
				serial, serialNow, _ := sessionStats(t, adaptiveConfig(2, 1, quanta, spaced))
				for _, workers := range []int{2, 4} {
					par, parNow, _ := sessionStats(t, adaptiveConfig(2, workers, quanta, spaced))
					if par != serial {
						t.Fatalf("workers=%d adaptive stats differ from serial run", workers)
					}
					if parNow != serialNow {
						t.Fatalf("workers=%d finished at %s, serial at %s", workers, parNow, serialNow)
					}
				}
				again, _, _ := sessionStats(t, adaptiveConfig(2, 3, quanta, spaced))
				if again != serial {
					t.Fatal("repeated adaptive run diverged")
				}
			})
		}
	}
}

// The adaptive horizon is the point of the feature: on a spaced workload it
// must execute materially fewer barriers than the fixed quantum for the same
// workload. (The completion tick is a barrier tick, so it may differ between
// the two schedules — that is the documented schedule difference, not an
// event-timing change.)
func TestShardedAdaptiveFewerBarriers(t *testing.T) {
	_, _, fixedSteps := sessionStats(t, adaptiveConfig(2, 1, 1, true))
	_, _, adptSteps := sessionStats(t, adaptiveConfig(2, 1, 64, true))
	if adptSteps*2 >= fixedSteps {
		t.Fatalf("adaptive ran %d barriers vs fixed %d: expected at least a 2x reduction on a spaced workload",
			adptSteps, fixedSteps)
	}
}

// Two shards panicking in the same quantum must BOTH be reported, each with
// its worker and kernel identity — and the session must stay closeable (the
// worker pool survives its shards' panics).
func TestShardedMultiPanicAttribution(t *testing.T) {
	for _, workers := range []int{0, 5} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			cfg := shardedConfig(EventBased, 4, workers, false)
			rig, err := NewShardedRig(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := rig.NewSession("", rig.Front.Now()+50*sim.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// Plant a bomb in two different shards, due inside the first
			// quantum.
			for _, ci := range []int{1, 3} {
				ci := ci
				k := rig.Chans[ci]
				k.Schedule(sim.NewEvent("boom", func() { panic(fmt.Sprintf("boom-chan%d", ci)) }), k.Now())
			}
			s.Start()
			var spe *ShardPanicError
			func() {
				defer func() {
					r := recover()
					var ok bool
					if spe, ok = r.(*ShardPanicError); !ok {
						t.Fatalf("expected *ShardPanicError, got %T: %v", r, r)
					}
				}()
				for {
					if done, err := s.Step(); done || err != nil {
						t.Fatalf("step returned (%v, %v) instead of panicking", done, err)
					}
				}
			}()
			if len(spe.Panics) != 2 {
				t.Fatalf("got %d panics, want 2: %v", len(spe.Panics), spe)
			}
			seen := map[string]int{}
			for _, p := range spe.Panics {
				seen[p.Kernel] = p.Worker
				want := fmt.Sprintf("boom-%s", p.Kernel)
				if p.Value != want {
					t.Fatalf("kernel %s carries value %v, want %q", p.Kernel, p.Value, want)
				}
			}
			if _, ok := seen["chan1"]; !ok {
				t.Fatalf("chan1 panic missing: %v", spe)
			}
			if _, ok := seen["chan3"]; !ok {
				t.Fatalf("chan3 panic missing: %v", spe)
			}
			if workers == 5 {
				// Round-robin assignment: kernels[2]=chan1 -> worker 2,
				// kernels[4]=chan3 -> worker 4.
				if seen["chan1"] != 2 || seen["chan3"] != 4 {
					t.Fatalf("worker attribution wrong: %v", seen)
				}
			}
			msg := spe.Error()
			if !strings.Contains(msg, "chan1") || !strings.Contains(msg, "chan3") {
				t.Fatalf("error string drops a shard: %s", msg)
			}
			// deferred Close must return promptly; if a worker deadlocked on
			// its done channel the test times out here.
		})
	}
}

// A sharded run with one channel and no extra workers degenerates to plain
// serial simulation and still completes (the CLI's -parallel 1 path).
func TestShardedSingleChannelSerial(t *testing.T) {
	cfg := shardedConfig(EventBased, 1, 0, false)
	rig, err := NewShardedRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rig.Run(50 * sim.Millisecond) {
		t.Fatal("did not complete")
	}
}
