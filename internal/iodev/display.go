package iodev

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// DisplayConfig shapes an isochronous framebuffer scanner: every Period it
// must fetch LineBytes from the framebuffer or the panel underflows. This
// is the canonical latency-critical I/O client behind the paper's §II-C
// remark that controllers schedule "based on the Quality-of-Service
// requirements of the requesting CPUs and I/O devices".
type DisplayConfig struct {
	// FrameBase is the framebuffer base address.
	FrameBase mem.Addr
	// FrameBytes is the framebuffer size; the scanner wraps over it.
	FrameBytes uint64
	// LineBytes is fetched every Period.
	LineBytes uint64
	// Period is the per-line deadline (e.g. 1080 lines at 60 Hz ≈ 15.4 µs).
	Period sim.Tick
	// FetchBytes is the size of each individual read.
	FetchBytes uint64
	// MaxOutstanding bounds in-flight reads.
	MaxOutstanding int
	// RequestorID tags the display's packets (wire it to a high QoS level).
	RequestorID int
}

// Validate checks the configuration.
func (c DisplayConfig) Validate() error {
	switch {
	case c.FrameBytes == 0 || c.LineBytes == 0 || c.FetchBytes == 0:
		return fmt.Errorf("iodev: zero display geometry")
	case c.LineBytes%c.FetchBytes != 0:
		return fmt.Errorf("iodev: line %d not a multiple of fetch %d", c.LineBytes, c.FetchBytes)
	case c.FrameBytes%c.LineBytes != 0:
		return fmt.Errorf("iodev: frame %d not a multiple of line %d", c.FrameBytes, c.LineBytes)
	case c.Period <= 0:
		return fmt.Errorf("iodev: non-positive period")
	case c.MaxOutstanding <= 0:
		return fmt.Errorf("iodev: non-positive outstanding limit")
	}
	return nil
}

// Display is the deadline-driven scanner. Each period it issues one line's
// worth of reads; if the previous line has not fully returned when the next
// period begins, an underflow is recorded (and the late line is abandoned —
// real panels repeat the previous line).
type Display struct {
	cfg  DisplayConfig
	k    *sim.Kernel
	port *mem.RequestPort

	linePos     mem.Addr
	pending     int
	toIssue     int
	blocked     *mem.Packet
	tick        *sim.Event
	running     bool
	lineStarted sim.Tick

	lines      *stats.Scalar
	underflows *stats.Scalar
	lineTime   *stats.Average
}

// NewDisplay builds a display scanner registering statistics under name.
func NewDisplay(k *sim.Kernel, cfg DisplayConfig, reg *stats.Registry, name string) (*Display, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Display{cfg: cfg, k: k, linePos: cfg.FrameBase}
	d.port = mem.NewRequestPort(name+".port", d, k)
	d.tick = sim.NewEvent(name+".line", d.startLine)
	r := reg.Child(name)
	d.lines = r.NewScalar("lines", "lines fetched")
	d.underflows = r.NewScalar("underflows", "deadline misses")
	d.lineTime = r.NewAverage("lineTime", "line fetch time (ns)")
	return d, nil
}

// Port returns the memory-side request port.
func (d *Display) Port() *mem.RequestPort { return d.port }

// Start begins scanning at the current tick.
func (d *Display) Start() {
	if d.running {
		return
	}
	d.running = true
	d.k.Schedule(d.tick, d.k.Now())
}

// Stop ends scanning after the current line.
func (d *Display) Stop() {
	d.running = false
}

// Underflows returns the number of missed line deadlines.
func (d *Display) Underflows() uint64 { return uint64(d.underflows.Value()) }

// Lines returns the number of line fetches started.
func (d *Display) Lines() uint64 { return uint64(d.lines.Value()) }

// AvgLineTimeNs returns the mean completed-line fetch time.
func (d *Display) AvgLineTimeNs() float64 { return d.lineTime.Mean() }

// startLine fires every Period: check the previous line's deadline, then
// issue the next line's reads.
func (d *Display) startLine() {
	if !d.running {
		return
	}
	if d.pending > 0 || d.toIssue > 0 || d.blocked != nil {
		// The previous line is late: underflow. Abandon its remaining
		// responses (they drain harmlessly) and start fresh.
		d.underflows.Inc()
		d.pending = 0
		d.toIssue = 0
		d.blocked = nil
	}
	d.lines.Inc()
	d.lineStarted = d.k.Now()
	fetches := int(d.cfg.LineBytes / d.cfg.FetchBytes)
	d.pending = fetches
	d.toIssue = fetches
	d.issueFetches()
	d.k.Schedule(d.tick, d.k.Now()+d.cfg.Period)
}

// issueFetches sends the line's remaining reads until blocked or done.
func (d *Display) issueFetches() {
	for d.toIssue > 0 && d.blocked == nil {
		pkt := mem.NewRead(d.linePos, d.cfg.FetchBytes, d.cfg.RequestorID, d.k.Now())
		d.linePos += mem.Addr(d.cfg.FetchBytes)
		if uint64(d.linePos-d.cfg.FrameBase) >= d.cfg.FrameBytes {
			d.linePos = d.cfg.FrameBase
		}
		d.toIssue--
		if !d.port.SendTimingReq(pkt) {
			d.blocked = pkt
			return
		}
	}
}

// RecvTimingResp implements mem.Requestor.
func (d *Display) RecvTimingResp(*mem.Packet) bool {
	if d.pending > 0 {
		d.pending--
		if d.pending == 0 && d.blocked == nil {
			d.lineTime.Sample((d.k.Now() - d.lineStarted).Nanoseconds())
		}
	}
	return true
}

// RecvReqRetry implements mem.Requestor.
func (d *Display) RecvReqRetry() {
	if d.blocked == nil {
		return
	}
	pkt := d.blocked
	d.blocked = nil
	if !d.port.SendTimingReq(pkt) {
		d.blocked = pkt
		return
	}
	d.issueFetches()
}
