package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// newRankHarness builds a harness over the two-rank DDR3 preset.
func newRankHarness(t *testing.T, mutate func(*Config)) *harness {
	t.Helper()
	k := sim.NewKernel()
	cfg := DefaultConfig(dram.DDR3_1600_x64_2R())
	cfg.FrontendLatency = 0
	cfg.BackendLatency = 0
	if mutate != nil {
		mutate(&cfg)
	}
	reg := stats.NewRegistry("test")
	c, err := NewController(k, cfg, reg, "mc")
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{k: k, c: c}
	h.port = mem.NewRequestPort("gen", h, k)
	mem.Connect(h.port, c.Port())
	return h
}

// rankAddr returns an address decoding to the given rank/bank/row.
func rankAddr(t *testing.T, cfg Config, rank, bank int, row uint64) mem.Addr {
	t.Helper()
	dec, err := dram.NewDecoder(cfg.Device.Describe().Org, cfg.Mapping, cfg.Channels)
	if err != nil {
		t.Fatal(err)
	}
	return dec.Encode(dram.Coord{Rank: rank, Bank: bank, Row: row}, 0)
}

// Two ranks double the bank state: same bank index in different ranks holds
// different open rows concurrently.
func TestRanksHaveIndependentBankState(t *testing.T) {
	h := newRankHarness(t, nil)
	a0 := rankAddr(t, h.c.cfg, 0, 0, 5)
	a1 := rankAddr(t, h.c.cfg, 1, 0, 9)
	h.at(0, func() {
		h.send(mem.NewRead(a0, 64, 0, 0))
		h.send(mem.NewRead(a1, 64, 0, 0))
	})
	// Follow-ups to both rows: all hits if the rows coexist.
	h.at(2*sim.Microsecond, func() {
		h.send(mem.NewRead(a0+64, 64, 0, 0))
		h.send(mem.NewRead(a1+64, 64, 0, 0))
	})
	// Run past the second batch unconditionally (the controller goes
	// quiescent between the batches).
	h.k.RunUntil(10 * sim.Microsecond)
	if len(h.responses) != 4 {
		t.Fatalf("responses = %d", len(h.responses))
	}
	if h.c.st.readRowHits.Value() != 2 {
		t.Fatalf("row hits = %v, want 2 (one per rank)", h.c.st.readRowHits.Value())
	}
	if h.c.st.activations.Value() != 2 {
		t.Fatalf("activations = %v, want 2", h.c.st.activations.Value())
	}
}

// The tXAW activation window is per rank: alternating ranks sustains twice
// the activate rate of hammering one rank.
func TestActivationWindowPerRank(t *testing.T) {
	run := func(useBothRanks bool) sim.Tick {
		h := newRankHarness(t, func(c *Config) { c.Page = Closed })
		h.at(0, func() {
			for i := 0; i < 8; i++ {
				rank := 0
				if useBothRanks {
					rank = i % 2
				}
				// Distinct banks within each rank avoid same-bank tRC
				// serialisation; the XAW window is the binding constraint.
				bank := (i / 2) % h.c.org.BanksPerRank
				if !useBothRanks {
					bank = i % h.c.org.BanksPerRank
				}
				h.send(mem.NewRead(rankAddr(t, h.c.cfg, rank, bank, uint64(i)), 64, 0, 0))
			}
		})
		h.run(20 * sim.Microsecond)
		if len(h.responses) != 8 {
			t.Fatalf("responses = %d", len(h.responses))
		}
		return h.respTicks[len(h.respTicks)-1]
	}
	single := run(false)
	both := run(true)
	if both >= single {
		t.Fatalf("two ranks (%s) not faster than one (%s) under tXAW", both, single)
	}
}

// Refresh is per rank: both ranks refresh at the tREFI cadence.
func TestRefreshPerRank(t *testing.T) {
	h := newRankHarness(t, nil)
	tm := h.c.tim
	h.k.RunUntil(5 * tm.TREFI)
	got := h.c.st.refreshes.Value()
	if got < 8 || got > 12 { // 2 ranks x ~5 refreshes
		t.Fatalf("refreshes = %v, want ~10", got)
	}
}

// The write-to-read turnaround is tracked per rank: a read to the *other*
// rank does not pay the tWTR of a write to this rank.
func TestTurnaroundPerRank(t *testing.T) {
	// Same-rank case: read delayed by tWTR after the write's data.
	h := newRankHarness(t, func(c *Config) {
		c.WriteHighThresh = 0.05
		c.WriteLowThresh = 0
		c.MinWritesPerSwitch = 1
	})
	wAddr := rankAddr(t, h.c.cfg, 0, 0, 0)
	rSame := rankAddr(t, h.c.cfg, 0, 1, 0)
	rOther := rankAddr(t, h.c.cfg, 1, 1, 0)
	h.at(0, func() { h.send(mem.NewWrite(wAddr, 64, 0, 0)) })
	h.at(sim.Nanosecond, func() {
		h.send(mem.NewRead(rSame, 64, 0, 0))
		h.send(mem.NewRead(rOther, 64, 0, 0))
	})
	h.run(10 * sim.Microsecond)
	if len(h.responses) != 3 {
		t.Fatalf("responses = %d", len(h.responses))
	}
	// The other-rank read (served second on the shared bus) must not be
	// later than bus serialisation requires; the same-rank read pays tWTR.
	// Identify responses by address.
	var sameTick, otherTick sim.Tick
	for i, p := range h.responses {
		switch p.Addr {
		case rSame:
			sameTick = h.respTicks[i]
		case rOther:
			otherTick = h.respTicks[i]
		}
	}
	if otherTick >= sameTick {
		t.Fatalf("cross-rank read (%s) not earlier than same-rank read (%s) after a write",
			otherTick, sameTick)
	}
}

// Multi-rank traffic completes and conserves bytes under all page policies.
func TestMultiRankConservation(t *testing.T) {
	for _, page := range []PagePolicy{Open, OpenAdaptive, Closed, ClosedAdaptive} {
		page := page
		h := newRankHarness(t, func(c *Config) { c.Page = page })
		n := 64
		sent := 0
		var inject func()
		inject = func() {
			if h.blocked == nil && sent < n {
				i := sent
				addr := rankAddr(t, h.c.cfg, i%2, (i/2)%8, uint64(i/16))
				if i%3 == 0 {
					h.send(mem.NewWrite(addr, 64, 0, 0))
				} else {
					h.send(mem.NewRead(addr, 64, 0, 0))
				}
				sent++
			}
			if sent < n || h.blocked != nil {
				h.k.Schedule(sim.NewEvent("inject", inject), h.k.Now()+5*sim.Nanosecond)
			}
		}
		h.at(0, inject)
		h.at(50*sim.Microsecond, func() { h.c.Drain() })
		h.run(100 * sim.Microsecond)
		if len(h.responses) != n {
			t.Fatalf("%s: responses = %d, want %d", page, len(h.responses), n)
		}
		total := h.c.st.bytesRead.Value() + h.c.st.bytesWritten.Value() +
			h.c.st.servicedByWrQ.Value()*64
		// Merged writes reduce DRAM traffic; account via write bursts.
		if total < float64(n*64)-h.c.st.mergedWrBursts.Value()*64 {
			t.Fatalf("%s: bytes moved %v below issued", page, total)
		}
	}
}
