package cpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trafficgen"
)

func TestGPUConfigValidate(t *testing.T) {
	good := GPUConfig{Wavefronts: 8, AccessBytes: 64}
	if good.Validate() != nil {
		t.Fatal("good config rejected")
	}
	bad := []GPUConfig{
		{Wavefronts: 0, AccessBytes: 64},
		{Wavefronts: 8, AccessBytes: 0},
		{Wavefronts: 8, AccessBytes: 64, ComputePerAccess: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func buildGPU(t *testing.T, cfg GPUConfig, delay sim.Tick) (*sim.Kernel, *GPU) {
	t.Helper()
	k := sim.NewKernel()
	reg := stats.NewRegistry("t")
	g, err := NewGPU(k, cfg, func(w int) trafficgen.Pattern {
		return &trafficgen.Linear{
			Start: mem.Addr(w) * (1 << 20), End: mem.Addr(w+1) * (1 << 20),
			Step: 64, ReadPercent: 100,
		}
	}, reg, "gpu")
	if err != nil {
		t.Fatal(err)
	}
	m := newInstantMem(k, delay)
	mem.Connect(g.Port(), m.port)
	return k, g
}

func TestGPUCompletes(t *testing.T) {
	cfg := GPUConfig{Wavefronts: 8, AccessBytes: 64, MemOps: 400}
	k, g := buildGPU(t, cfg, 50*sim.Nanosecond)
	g.Start()
	for i := 0; i < 10000 && !g.Done(); i++ {
		k.RunUntil(k.Now() + sim.Microsecond)
	}
	if !g.Done() {
		t.Fatalf("not done: issued=%d completed=%d", g.issued, g.completed)
	}
	if g.Throughput() <= 0 || g.AvgLoadLatencyNs() < 50 {
		t.Fatalf("throughput=%v lat=%v", g.Throughput(), g.AvgLoadLatencyNs())
	}
}

// The defining property: against a bandwidth-limited memory, a GPU with
// enough wavefronts is latency-tolerant (throughput pinned at the memory's
// service rate), while the low-MLP CPU model's throughput collapses with
// latency.
func TestGPULatencyTolerance(t *testing.T) {
	gpuRate := func(delay sim.Tick) float64 {
		cfg := GPUConfig{Wavefronts: 32, AccessBytes: 64, MemOps: 2000}
		k := sim.NewKernel()
		reg := stats.NewRegistry("t")
		g, err := NewGPU(k, cfg, func(w int) trafficgen.Pattern {
			return &trafficgen.Linear{
				Start: mem.Addr(w) * (1 << 20), End: mem.Addr(w+1) * (1 << 20),
				Step: 64, ReadPercent: 100,
			}
		}, reg, "gpu")
		if err != nil {
			t.Fatal(err)
		}
		m := newSlottedMem(k, delay, 10*sim.Nanosecond) // 100 responses/us cap
		mem.Connect(g.Port(), m.port)
		g.Start()
		for i := 0; i < 10000 && !g.Done(); i++ {
			k.RunUntil(k.Now() + sim.Microsecond)
		}
		if !g.Done() {
			t.Fatal("gpu not done")
		}
		return g.Throughput()
	}
	cpuRate := func(delay sim.Tick) float64 {
		cfg := DefaultConfig()
		cfg.MaxOutstanding = 2
		cfg.MemOps = 2000
		k, c, _ := buildCore(t, cfg, StreamWorkload(1<<20, 1), delay)
		c.Start()
		for i := 0; i < 100000 && !c.Done(); i++ {
			k.RunUntil(k.Now() + sim.Microsecond)
		}
		if !c.Done() {
			t.Fatal("cpu not done")
		}
		elapsed := float64(k.Now()) / float64(sim.Microsecond)
		return 2000 / elapsed
	}
	gpuLoss := 1 - gpuRate(200*sim.Nanosecond)/gpuRate(100*sim.Nanosecond)
	cpuLoss := 1 - cpuRate(200*sim.Nanosecond)/cpuRate(100*sim.Nanosecond)
	if gpuLoss > 0.15 {
		t.Fatalf("GPU lost %.0f%% throughput from 2x latency — not latency-tolerant", gpuLoss*100)
	}
	if cpuLoss < 0.3 {
		t.Fatalf("CPU only lost %.0f%% — the contrast workload is wrong", cpuLoss*100)
	}
}

// A GPU saturates a DRAM channel that a low-MLP CPU cannot.
func TestGPUSaturatesDRAM(t *testing.T) {
	k := sim.NewKernel()
	reg := stats.NewRegistry("t")
	ctrl, err := core.NewController(k, core.DefaultConfig(dram.DDR3_1600_x64()), reg, "mc")
	if err != nil {
		t.Fatal(err)
	}
	// Offset wavefronts by one row buffer each so they start in rotating
	// banks (1 MB offsets would all alias to bank 0 under RoRaBaCoCh), and
	// keep few enough streams that rows stay open between their accesses.
	rowBytes := dram.DDR3_1600_x64().Org.RowBufferBytes
	g, err := NewGPU(k, GPUConfig{Wavefronts: 8, AccessBytes: 64, MemOps: 4000},
		func(w int) trafficgen.Pattern {
			return &trafficgen.Linear{
				Start: mem.Addr(uint64(w) * rowBytes), End: 64 << 20,
				Step: 64, ReadPercent: 100,
			}
		}, reg, "gpu")
	if err != nil {
		t.Fatal(err)
	}
	mem.Connect(g.Port(), ctrl.Port())
	g.Start()
	for i := 0; i < 10000 && !g.Done(); i++ {
		k.RunUntil(k.Now() + sim.Microsecond)
	}
	if !g.Done() {
		t.Fatal("not done")
	}
	if util := ctrl.BusUtilisation(); util < 0.7 {
		t.Fatalf("48 wavefronts only reached %.2f utilisation", util)
	}
}

// slottedMem answers with a fixed latency but serves at most one request
// per gap — a bandwidth-limited memory for latency-tolerance studies.
type slottedMem struct {
	k        *sim.Kernel
	port     *mem.ResponsePort
	latency  sim.Tick
	gap      sim.Tick
	nextSlot sim.Tick
}

func newSlottedMem(k *sim.Kernel, latency, gap sim.Tick) *slottedMem {
	m := &slottedMem{k: k, latency: latency, gap: gap}
	m.port = mem.NewResponsePort("slotmem", m, k)
	return m
}

func (m *slottedMem) RecvTimingReq(pkt *mem.Packet) bool {
	slot := m.nextSlot
	if now := m.k.Now(); slot < now {
		slot = now
	}
	m.nextSlot = slot + m.gap
	m.k.Schedule(sim.NewEvent("slotresp", func() {
		pkt.MakeResponse()
		m.port.SendTimingResp(pkt)
	}), slot+m.latency)
	return true
}

func (m *slottedMem) RecvRespRetry() {}
