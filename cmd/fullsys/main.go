// Command fullsys regenerates the paper's Figure 8: full-system runs of
// PARSEC-like workloads on 4 cores with private L1s, a shared L2 and a DDR3
// channel, executed once per controller model. Each bar is the ratio of the
// cycle-based model's metric to the event-based model's — ratios near 1 mean
// the models correlate; host-time ratios above 1 mean the event-based model
// simulates faster.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	memOps := flag.Uint64("memops", 5000, "memory operations per core (region of interest)")
	flag.Parse()

	res, err := experiments.RunFig8(*memOps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fullsys:", err)
		os.Exit(1)
	}

	fmt.Printf("Full-system comparison (Figure 8): 4 cores, %d mem ops/core, DDR3, closed page\n", *memOps)
	fmt.Println("ratios are cycle-based / event-based; 1.00 = perfect correlation")
	fmt.Println()
	fmt.Printf("%-16s %10s %10s %12s %10s\n", "workload", "sim time", "IPC", "L2 miss lat", "bus util")
	for _, row := range res.Rows {
		fmt.Printf("%-16s %9.2fx %10.2f %12.2f %10.2f\n",
			row.Workload, row.SimTimeRatio, row.IPCRatio, row.MissLatRatio, row.BusUtilRatio)
	}
	fmt.Printf("\naverage simulation-time reduction from the event-based model: %.0f%%\n",
		res.AvgSimTimeReduction*100)
	fmt.Println("(paper reports up to 20%, 13% on average, with metric ratios near 1)")
}
