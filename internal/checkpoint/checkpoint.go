// Package checkpoint implements versioned, checksummed snapshots of a running
// simulation. Long experiments (the paper's pitch is making DRAM-controller
// simulation fast enough for full-system runs) survive crashes, watchdog
// trips and Ctrl-C only if state can be saved and resumed; gem5-family
// studies lean on checkpoints for exactly this reason.
//
// The design splits responsibility between a Manager and the components:
//
//   - Every stateful component implements Checkpointable: it serializes its
//     own fields and the scheduling state (when/seq) of the kernel events it
//     owns, and on restore re-creates those events itself. The kernel never
//     serializes its queue — closures are not serializable, and components
//     know how to rebuild their callbacks; the queue does not.
//
//   - Packet identity is preserved across components: the crossbar routes a
//     response by the same *mem.Packet pointer it forwarded as a request, so
//     the Manager owns a packet table. Components refer to packets by table
//     reference during save (mem.PacketTable) and re-link to the shared,
//     once-materialized instance during restore (mem.PacketLookup).
//
//   - Determinism: restore is two-phase. Components only *register* work —
//     a clock warp for their kernel, and one deferred re-schedule per saved
//     event tagged with the event's saved sequence number. Commit applies
//     the clock warps first, then runs the deferred re-schedules in saved-seq
//     order. Kernel event order is (when, priority, seq); replaying the
//     schedules in saved-seq order makes the fresh seqs order-isomorphic to
//     the saved ones, so same-tick, same-priority ties fire exactly as in an
//     uninterrupted run — which is what makes resume bit-identical.
package checkpoint

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Version is the checkpoint format version; bumped on any incompatible
// change to the framing, the body schema, or a component's section schema.
const Version = 1

// Checkpointable is implemented by every component that owns simulation
// state. CheckpointSave returns a JSON-serializable image of the component
// (using pt for any *mem.Packet it holds). CheckpointRestore is called on a
// freshly constructed component: it must deschedule any events its
// constructor armed, parse data (the bytes its CheckpointSave produced),
// rebuild its fields, and register clock warps / deferred re-schedules with
// rs. It must not schedule on the kernel directly — the clock has not been
// warped yet when it runs.
type Checkpointable interface {
	CheckpointSave(pt mem.PacketTable) (any, error)
	CheckpointRestore(pl mem.PacketLookup, rs sim.Restorer, data []byte) error
}

// Manager holds the registered components of one simulation, in a fixed
// order, and drives save and restore. Registration order must be
// reconstructible from the configuration alone (constructors register in a
// deterministic order), because restore matches sections to components by ID.
type Manager struct {
	fingerprint string
	ids         []string
	comps       map[string]Checkpointable
}

// NewManager returns an empty manager. The fingerprint is an arbitrary
// string identifying the simulation configuration (spec, model, page policy,
// channels, seed, ...); Restore refuses a checkpoint whose fingerprint
// differs, because resuming under a different configuration silently
// produces garbage.
func NewManager(fingerprint string) *Manager {
	return &Manager{fingerprint: fingerprint, comps: make(map[string]Checkpointable)}
}

// Fingerprint returns the configuration fingerprint the manager was built with.
func (m *Manager) Fingerprint() string { return m.fingerprint }

// Register adds a component under a unique ID. Kernels (via WrapKernel)
// should be registered before the components scheduled on them, purely for
// readable section ordering — restore is two-phase, so correctness does not
// depend on it.
func (m *Manager) Register(id string, c Checkpointable) {
	if _, dup := m.comps[id]; dup {
		panic(fmt.Sprintf("checkpoint: duplicate component id %q", id))
	}
	if c == nil {
		panic(fmt.Sprintf("checkpoint: nil component %q", id))
	}
	m.ids = append(m.ids, id)
	m.comps[id] = c
}

// saveCtx implements mem.PacketTable: packets get dense refs in first-use
// order, which is deterministic because components save in registration
// order and each serializes its packets in a deterministic order.
type saveCtx struct {
	refs map[*mem.Packet]int
	pkts []*mem.Packet
}

func (c *saveCtx) PacketRef(p *mem.Packet) int {
	if p == nil {
		return -1
	}
	if ref, ok := c.refs[p]; ok {
		return ref
	}
	ref := len(c.pkts)
	c.refs[p] = ref
	c.pkts = append(c.pkts, p)
	return ref
}

// restoreCtx implements mem.PacketLookup and sim.Restorer.
type restoreCtx struct {
	pkts []*mem.Packet

	kernels []*sim.Kernel // first-warp order
	warps   map[*sim.Kernel]clockWarp
	defers  []deferred
	err     error
}

type clockWarp struct {
	now      sim.Tick
	executed uint64
	sameTick uint64
}

type deferred struct {
	seq uint64
	fn  func()
}

func (c *restoreCtx) PacketByRef(ref int) *mem.Packet {
	if ref == -1 {
		return nil
	}
	if ref < 0 || ref >= len(c.pkts) {
		panic(fmt.Sprintf("checkpoint: packet ref %d out of range (table has %d)", ref, len(c.pkts)))
	}
	return c.pkts[ref]
}

func (c *restoreCtx) WarpClock(k *sim.Kernel, now sim.Tick, executed, sameTick uint64) {
	w := clockWarp{now: now, executed: executed, sameTick: sameTick}
	if prev, ok := c.warps[k]; ok {
		if prev != w && c.err == nil {
			c.err = fmt.Errorf("checkpoint: conflicting clock warps for one kernel (%s/%d vs %s/%d)",
				prev.now, prev.executed, now, executed)
		}
		return
	}
	c.warps[k] = w
	c.kernels = append(c.kernels, k)
}

func (c *restoreCtx) Defer(seq uint64, fn func()) {
	c.defers = append(c.defers, deferred{seq: seq, fn: fn})
}

// commit applies the registered clock warps, then replays the deferred
// re-schedules in saved-seq order.
func (c *restoreCtx) commit() error {
	if c.err != nil {
		return c.err
	}
	for _, k := range c.kernels {
		w := c.warps[k]
		k.RestoreClock(w.now, w.executed, w.sameTick)
	}
	sort.SliceStable(c.defers, func(i, j int) bool { return c.defers[i].seq < c.defers[j].seq })
	for _, d := range c.defers {
		d.fn()
	}
	return nil
}
