#!/usr/bin/env bash
# Multi-standard smoke test: for each supported interface family the
# representative preset must (a) pass the per-standard validate smoke —
# a short run whose recorded command stream the device-aware protocol
# checker finds clean, (b) drive the protocol oracle violation-free under
# randomized traffic, with the stream recorded and replayed through the
# -cmd-trace file format with the same verdict, deterministically, and
# (c) complete a dramctrl run with non-zero bandwidth. DDR5's recorded
# stream must contain same-bank refreshes (REFSB), the headline quirk of
# its refresh discipline.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/dramctrl" ./cmd/dramctrl
go build -o "$workdir/protocheck" ./cmd/protocheck
go build -o "$workdir/validate" ./cmd/validate

for std in ddr3 ddr4 ddr5 lpddr5; do
    echo "== $std: validate per-standard smoke"
    "$workdir/validate" -standard "$std" >/dev/null

    echo "== $std: protocol oracle, recorded and replayed"
    "$workdir/protocheck" -standard "$std" -pattern random -reads 67 \
        -requests 20000 -seed 7 -cmd-trace "$workdir/$std.txt" >/dev/null
    "$workdir/protocheck" -standard "$std" \
        -cmd-trace-in "$workdir/$std.txt" >/dev/null

    echo "== $std: recording is deterministic"
    "$workdir/protocheck" -standard "$std" -pattern random -reads 67 \
        -requests 20000 -seed 7 -cmd-trace "$workdir/$std-2.txt" >/dev/null
    cmp "$workdir/$std.txt" "$workdir/$std-2.txt"

    echo "== $std: dramctrl run reports bandwidth"
    "$workdir/dramctrl" -standard "$std" -pattern random -reads 67 \
        -requests 20000 -seed 7 >"$workdir/$std.log"
    grep -q "bandwidth" "$workdir/$std.log" || {
        echo "FAIL: $std dramctrl run reported no bandwidth" >&2
        cat "$workdir/$std.log" >&2
        exit 1
    }
done

echo "== ddr5: recorded stream contains same-bank refreshes"
grep -q "REFSB" "$workdir/ddr5.txt" || {
    echo "FAIL: DDR5 command stream has no REFSB entry" >&2
    exit 1
}

echo "== ddr3: -standard resolves to the default preset (bit-compat guard)"
"$workdir/dramctrl" -spec DDR3-1600-x64 -pattern random -reads 67 \
    -requests 20000 -seed 7 >"$workdir/ddr3-byname.log"
cmp "$workdir/ddr3.log" "$workdir/ddr3-byname.log"

echo "PASS: standards smoke"
